
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tsrt/detector.cpp" "src/CMakeFiles/msbist_tsrt.dir/tsrt/detector.cpp.o" "gcc" "src/CMakeFiles/msbist_tsrt.dir/tsrt/detector.cpp.o.d"
  "/root/repo/src/tsrt/example_circuits.cpp" "src/CMakeFiles/msbist_tsrt.dir/tsrt/example_circuits.cpp.o" "gcc" "src/CMakeFiles/msbist_tsrt.dir/tsrt/example_circuits.cpp.o.d"
  "/root/repo/src/tsrt/impulse_compare.cpp" "src/CMakeFiles/msbist_tsrt.dir/tsrt/impulse_compare.cpp.o" "gcc" "src/CMakeFiles/msbist_tsrt.dir/tsrt/impulse_compare.cpp.o.d"
  "/root/repo/src/tsrt/pole_compare.cpp" "src/CMakeFiles/msbist_tsrt.dir/tsrt/pole_compare.cpp.o" "gcc" "src/CMakeFiles/msbist_tsrt.dir/tsrt/pole_compare.cpp.o.d"
  "/root/repo/src/tsrt/transient_test.cpp" "src/CMakeFiles/msbist_tsrt.dir/tsrt/transient_test.cpp.o" "gcc" "src/CMakeFiles/msbist_tsrt.dir/tsrt/transient_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/msbist_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/msbist_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/msbist_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/msbist_analog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
