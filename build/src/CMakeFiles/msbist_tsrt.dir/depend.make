# Empty dependencies file for msbist_tsrt.
# This may be replaced when dependencies are built.
