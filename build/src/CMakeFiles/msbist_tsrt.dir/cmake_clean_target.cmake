file(REMOVE_RECURSE
  "libmsbist_tsrt.a"
)
