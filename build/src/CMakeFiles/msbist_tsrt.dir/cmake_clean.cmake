file(REMOVE_RECURSE
  "CMakeFiles/msbist_tsrt.dir/tsrt/detector.cpp.o"
  "CMakeFiles/msbist_tsrt.dir/tsrt/detector.cpp.o.d"
  "CMakeFiles/msbist_tsrt.dir/tsrt/example_circuits.cpp.o"
  "CMakeFiles/msbist_tsrt.dir/tsrt/example_circuits.cpp.o.d"
  "CMakeFiles/msbist_tsrt.dir/tsrt/impulse_compare.cpp.o"
  "CMakeFiles/msbist_tsrt.dir/tsrt/impulse_compare.cpp.o.d"
  "CMakeFiles/msbist_tsrt.dir/tsrt/pole_compare.cpp.o"
  "CMakeFiles/msbist_tsrt.dir/tsrt/pole_compare.cpp.o.d"
  "CMakeFiles/msbist_tsrt.dir/tsrt/transient_test.cpp.o"
  "CMakeFiles/msbist_tsrt.dir/tsrt/transient_test.cpp.o.d"
  "libmsbist_tsrt.a"
  "libmsbist_tsrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msbist_tsrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
