file(REMOVE_RECURSE
  "CMakeFiles/msbist_circuit.dir/circuit/ac.cpp.o"
  "CMakeFiles/msbist_circuit.dir/circuit/ac.cpp.o.d"
  "CMakeFiles/msbist_circuit.dir/circuit/dc.cpp.o"
  "CMakeFiles/msbist_circuit.dir/circuit/dc.cpp.o.d"
  "CMakeFiles/msbist_circuit.dir/circuit/elements.cpp.o"
  "CMakeFiles/msbist_circuit.dir/circuit/elements.cpp.o.d"
  "CMakeFiles/msbist_circuit.dir/circuit/mos.cpp.o"
  "CMakeFiles/msbist_circuit.dir/circuit/mos.cpp.o.d"
  "CMakeFiles/msbist_circuit.dir/circuit/netlist.cpp.o"
  "CMakeFiles/msbist_circuit.dir/circuit/netlist.cpp.o.d"
  "CMakeFiles/msbist_circuit.dir/circuit/parser.cpp.o"
  "CMakeFiles/msbist_circuit.dir/circuit/parser.cpp.o.d"
  "CMakeFiles/msbist_circuit.dir/circuit/solver.cpp.o"
  "CMakeFiles/msbist_circuit.dir/circuit/solver.cpp.o.d"
  "CMakeFiles/msbist_circuit.dir/circuit/transient.cpp.o"
  "CMakeFiles/msbist_circuit.dir/circuit/transient.cpp.o.d"
  "CMakeFiles/msbist_circuit.dir/circuit/waveform.cpp.o"
  "CMakeFiles/msbist_circuit.dir/circuit/waveform.cpp.o.d"
  "libmsbist_circuit.a"
  "libmsbist_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msbist_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
