
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/ac.cpp" "src/CMakeFiles/msbist_circuit.dir/circuit/ac.cpp.o" "gcc" "src/CMakeFiles/msbist_circuit.dir/circuit/ac.cpp.o.d"
  "/root/repo/src/circuit/dc.cpp" "src/CMakeFiles/msbist_circuit.dir/circuit/dc.cpp.o" "gcc" "src/CMakeFiles/msbist_circuit.dir/circuit/dc.cpp.o.d"
  "/root/repo/src/circuit/elements.cpp" "src/CMakeFiles/msbist_circuit.dir/circuit/elements.cpp.o" "gcc" "src/CMakeFiles/msbist_circuit.dir/circuit/elements.cpp.o.d"
  "/root/repo/src/circuit/mos.cpp" "src/CMakeFiles/msbist_circuit.dir/circuit/mos.cpp.o" "gcc" "src/CMakeFiles/msbist_circuit.dir/circuit/mos.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/CMakeFiles/msbist_circuit.dir/circuit/netlist.cpp.o" "gcc" "src/CMakeFiles/msbist_circuit.dir/circuit/netlist.cpp.o.d"
  "/root/repo/src/circuit/parser.cpp" "src/CMakeFiles/msbist_circuit.dir/circuit/parser.cpp.o" "gcc" "src/CMakeFiles/msbist_circuit.dir/circuit/parser.cpp.o.d"
  "/root/repo/src/circuit/solver.cpp" "src/CMakeFiles/msbist_circuit.dir/circuit/solver.cpp.o" "gcc" "src/CMakeFiles/msbist_circuit.dir/circuit/solver.cpp.o.d"
  "/root/repo/src/circuit/transient.cpp" "src/CMakeFiles/msbist_circuit.dir/circuit/transient.cpp.o" "gcc" "src/CMakeFiles/msbist_circuit.dir/circuit/transient.cpp.o.d"
  "/root/repo/src/circuit/waveform.cpp" "src/CMakeFiles/msbist_circuit.dir/circuit/waveform.cpp.o" "gcc" "src/CMakeFiles/msbist_circuit.dir/circuit/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/msbist_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
