file(REMOVE_RECURSE
  "libmsbist_circuit.a"
)
