# Empty compiler generated dependencies file for msbist_circuit.
# This may be replaced when dependencies are built.
