file(REMOVE_RECURSE
  "libmsbist_analog.a"
)
