file(REMOVE_RECURSE
  "CMakeFiles/msbist_analog.dir/analog/comparator.cpp.o"
  "CMakeFiles/msbist_analog.dir/analog/comparator.cpp.o.d"
  "CMakeFiles/msbist_analog.dir/analog/current_comparator.cpp.o"
  "CMakeFiles/msbist_analog.dir/analog/current_comparator.cpp.o.d"
  "CMakeFiles/msbist_analog.dir/analog/macro.cpp.o"
  "CMakeFiles/msbist_analog.dir/analog/macro.cpp.o.d"
  "CMakeFiles/msbist_analog.dir/analog/opamp.cpp.o"
  "CMakeFiles/msbist_analog.dir/analog/opamp.cpp.o.d"
  "CMakeFiles/msbist_analog.dir/analog/references.cpp.o"
  "CMakeFiles/msbist_analog.dir/analog/references.cpp.o.d"
  "CMakeFiles/msbist_analog.dir/analog/sc_integrator.cpp.o"
  "CMakeFiles/msbist_analog.dir/analog/sc_integrator.cpp.o.d"
  "libmsbist_analog.a"
  "libmsbist_analog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msbist_analog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
