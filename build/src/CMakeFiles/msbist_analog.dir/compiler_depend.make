# Empty compiler generated dependencies file for msbist_analog.
# This may be replaced when dependencies are built.
