
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analog/comparator.cpp" "src/CMakeFiles/msbist_analog.dir/analog/comparator.cpp.o" "gcc" "src/CMakeFiles/msbist_analog.dir/analog/comparator.cpp.o.d"
  "/root/repo/src/analog/current_comparator.cpp" "src/CMakeFiles/msbist_analog.dir/analog/current_comparator.cpp.o" "gcc" "src/CMakeFiles/msbist_analog.dir/analog/current_comparator.cpp.o.d"
  "/root/repo/src/analog/macro.cpp" "src/CMakeFiles/msbist_analog.dir/analog/macro.cpp.o" "gcc" "src/CMakeFiles/msbist_analog.dir/analog/macro.cpp.o.d"
  "/root/repo/src/analog/opamp.cpp" "src/CMakeFiles/msbist_analog.dir/analog/opamp.cpp.o" "gcc" "src/CMakeFiles/msbist_analog.dir/analog/opamp.cpp.o.d"
  "/root/repo/src/analog/references.cpp" "src/CMakeFiles/msbist_analog.dir/analog/references.cpp.o" "gcc" "src/CMakeFiles/msbist_analog.dir/analog/references.cpp.o.d"
  "/root/repo/src/analog/sc_integrator.cpp" "src/CMakeFiles/msbist_analog.dir/analog/sc_integrator.cpp.o" "gcc" "src/CMakeFiles/msbist_analog.dir/analog/sc_integrator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/msbist_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/msbist_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
