file(REMOVE_RECURSE
  "libmsbist_digital.a"
)
