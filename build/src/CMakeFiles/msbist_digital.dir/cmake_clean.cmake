file(REMOVE_RECURSE
  "CMakeFiles/msbist_digital.dir/digital/counter.cpp.o"
  "CMakeFiles/msbist_digital.dir/digital/counter.cpp.o.d"
  "CMakeFiles/msbist_digital.dir/digital/fsm.cpp.o"
  "CMakeFiles/msbist_digital.dir/digital/fsm.cpp.o.d"
  "CMakeFiles/msbist_digital.dir/digital/latch.cpp.o"
  "CMakeFiles/msbist_digital.dir/digital/latch.cpp.o.d"
  "CMakeFiles/msbist_digital.dir/digital/signature.cpp.o"
  "CMakeFiles/msbist_digital.dir/digital/signature.cpp.o.d"
  "libmsbist_digital.a"
  "libmsbist_digital.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msbist_digital.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
