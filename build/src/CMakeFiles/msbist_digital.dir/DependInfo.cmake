
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/digital/counter.cpp" "src/CMakeFiles/msbist_digital.dir/digital/counter.cpp.o" "gcc" "src/CMakeFiles/msbist_digital.dir/digital/counter.cpp.o.d"
  "/root/repo/src/digital/fsm.cpp" "src/CMakeFiles/msbist_digital.dir/digital/fsm.cpp.o" "gcc" "src/CMakeFiles/msbist_digital.dir/digital/fsm.cpp.o.d"
  "/root/repo/src/digital/latch.cpp" "src/CMakeFiles/msbist_digital.dir/digital/latch.cpp.o" "gcc" "src/CMakeFiles/msbist_digital.dir/digital/latch.cpp.o.d"
  "/root/repo/src/digital/signature.cpp" "src/CMakeFiles/msbist_digital.dir/digital/signature.cpp.o" "gcc" "src/CMakeFiles/msbist_digital.dir/digital/signature.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/msbist_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
