# Empty dependencies file for msbist_digital.
# This may be replaced when dependencies are built.
