
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faults/campaign.cpp" "src/CMakeFiles/msbist_faults.dir/faults/campaign.cpp.o" "gcc" "src/CMakeFiles/msbist_faults.dir/faults/campaign.cpp.o.d"
  "/root/repo/src/faults/fault.cpp" "src/CMakeFiles/msbist_faults.dir/faults/fault.cpp.o" "gcc" "src/CMakeFiles/msbist_faults.dir/faults/fault.cpp.o.d"
  "/root/repo/src/faults/parametric.cpp" "src/CMakeFiles/msbist_faults.dir/faults/parametric.cpp.o" "gcc" "src/CMakeFiles/msbist_faults.dir/faults/parametric.cpp.o.d"
  "/root/repo/src/faults/universe.cpp" "src/CMakeFiles/msbist_faults.dir/faults/universe.cpp.o" "gcc" "src/CMakeFiles/msbist_faults.dir/faults/universe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/msbist_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/msbist_analog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/msbist_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
