file(REMOVE_RECURSE
  "libmsbist_faults.a"
)
