file(REMOVE_RECURSE
  "CMakeFiles/msbist_faults.dir/faults/campaign.cpp.o"
  "CMakeFiles/msbist_faults.dir/faults/campaign.cpp.o.d"
  "CMakeFiles/msbist_faults.dir/faults/fault.cpp.o"
  "CMakeFiles/msbist_faults.dir/faults/fault.cpp.o.d"
  "CMakeFiles/msbist_faults.dir/faults/parametric.cpp.o"
  "CMakeFiles/msbist_faults.dir/faults/parametric.cpp.o.d"
  "CMakeFiles/msbist_faults.dir/faults/universe.cpp.o"
  "CMakeFiles/msbist_faults.dir/faults/universe.cpp.o.d"
  "libmsbist_faults.a"
  "libmsbist_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msbist_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
