# Empty compiler generated dependencies file for msbist_faults.
# This may be replaced when dependencies are built.
