
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/convolution.cpp" "src/CMakeFiles/msbist_dsp.dir/dsp/convolution.cpp.o" "gcc" "src/CMakeFiles/msbist_dsp.dir/dsp/convolution.cpp.o.d"
  "/root/repo/src/dsp/correlation.cpp" "src/CMakeFiles/msbist_dsp.dir/dsp/correlation.cpp.o" "gcc" "src/CMakeFiles/msbist_dsp.dir/dsp/correlation.cpp.o.d"
  "/root/repo/src/dsp/fft.cpp" "src/CMakeFiles/msbist_dsp.dir/dsp/fft.cpp.o" "gcc" "src/CMakeFiles/msbist_dsp.dir/dsp/fft.cpp.o.d"
  "/root/repo/src/dsp/matrix.cpp" "src/CMakeFiles/msbist_dsp.dir/dsp/matrix.cpp.o" "gcc" "src/CMakeFiles/msbist_dsp.dir/dsp/matrix.cpp.o.d"
  "/root/repo/src/dsp/noise.cpp" "src/CMakeFiles/msbist_dsp.dir/dsp/noise.cpp.o" "gcc" "src/CMakeFiles/msbist_dsp.dir/dsp/noise.cpp.o.d"
  "/root/repo/src/dsp/polynomial.cpp" "src/CMakeFiles/msbist_dsp.dir/dsp/polynomial.cpp.o" "gcc" "src/CMakeFiles/msbist_dsp.dir/dsp/polynomial.cpp.o.d"
  "/root/repo/src/dsp/prbs.cpp" "src/CMakeFiles/msbist_dsp.dir/dsp/prbs.cpp.o" "gcc" "src/CMakeFiles/msbist_dsp.dir/dsp/prbs.cpp.o.d"
  "/root/repo/src/dsp/resample.cpp" "src/CMakeFiles/msbist_dsp.dir/dsp/resample.cpp.o" "gcc" "src/CMakeFiles/msbist_dsp.dir/dsp/resample.cpp.o.d"
  "/root/repo/src/dsp/spectrum.cpp" "src/CMakeFiles/msbist_dsp.dir/dsp/spectrum.cpp.o" "gcc" "src/CMakeFiles/msbist_dsp.dir/dsp/spectrum.cpp.o.d"
  "/root/repo/src/dsp/state_space.cpp" "src/CMakeFiles/msbist_dsp.dir/dsp/state_space.cpp.o" "gcc" "src/CMakeFiles/msbist_dsp.dir/dsp/state_space.cpp.o.d"
  "/root/repo/src/dsp/vec.cpp" "src/CMakeFiles/msbist_dsp.dir/dsp/vec.cpp.o" "gcc" "src/CMakeFiles/msbist_dsp.dir/dsp/vec.cpp.o.d"
  "/root/repo/src/dsp/window.cpp" "src/CMakeFiles/msbist_dsp.dir/dsp/window.cpp.o" "gcc" "src/CMakeFiles/msbist_dsp.dir/dsp/window.cpp.o.d"
  "/root/repo/src/dsp/ztransfer.cpp" "src/CMakeFiles/msbist_dsp.dir/dsp/ztransfer.cpp.o" "gcc" "src/CMakeFiles/msbist_dsp.dir/dsp/ztransfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
