# Empty dependencies file for msbist_dsp.
# This may be replaced when dependencies are built.
