file(REMOVE_RECURSE
  "libmsbist_dsp.a"
)
