file(REMOVE_RECURSE
  "CMakeFiles/msbist_dsp.dir/dsp/convolution.cpp.o"
  "CMakeFiles/msbist_dsp.dir/dsp/convolution.cpp.o.d"
  "CMakeFiles/msbist_dsp.dir/dsp/correlation.cpp.o"
  "CMakeFiles/msbist_dsp.dir/dsp/correlation.cpp.o.d"
  "CMakeFiles/msbist_dsp.dir/dsp/fft.cpp.o"
  "CMakeFiles/msbist_dsp.dir/dsp/fft.cpp.o.d"
  "CMakeFiles/msbist_dsp.dir/dsp/matrix.cpp.o"
  "CMakeFiles/msbist_dsp.dir/dsp/matrix.cpp.o.d"
  "CMakeFiles/msbist_dsp.dir/dsp/noise.cpp.o"
  "CMakeFiles/msbist_dsp.dir/dsp/noise.cpp.o.d"
  "CMakeFiles/msbist_dsp.dir/dsp/polynomial.cpp.o"
  "CMakeFiles/msbist_dsp.dir/dsp/polynomial.cpp.o.d"
  "CMakeFiles/msbist_dsp.dir/dsp/prbs.cpp.o"
  "CMakeFiles/msbist_dsp.dir/dsp/prbs.cpp.o.d"
  "CMakeFiles/msbist_dsp.dir/dsp/resample.cpp.o"
  "CMakeFiles/msbist_dsp.dir/dsp/resample.cpp.o.d"
  "CMakeFiles/msbist_dsp.dir/dsp/spectrum.cpp.o"
  "CMakeFiles/msbist_dsp.dir/dsp/spectrum.cpp.o.d"
  "CMakeFiles/msbist_dsp.dir/dsp/state_space.cpp.o"
  "CMakeFiles/msbist_dsp.dir/dsp/state_space.cpp.o.d"
  "CMakeFiles/msbist_dsp.dir/dsp/vec.cpp.o"
  "CMakeFiles/msbist_dsp.dir/dsp/vec.cpp.o.d"
  "CMakeFiles/msbist_dsp.dir/dsp/window.cpp.o"
  "CMakeFiles/msbist_dsp.dir/dsp/window.cpp.o.d"
  "CMakeFiles/msbist_dsp.dir/dsp/ztransfer.cpp.o"
  "CMakeFiles/msbist_dsp.dir/dsp/ztransfer.cpp.o.d"
  "libmsbist_dsp.a"
  "libmsbist_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msbist_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
