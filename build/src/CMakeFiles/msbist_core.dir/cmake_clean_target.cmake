file(REMOVE_RECURSE
  "libmsbist_core.a"
)
