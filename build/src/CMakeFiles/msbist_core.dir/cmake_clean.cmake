file(REMOVE_RECURSE
  "CMakeFiles/msbist_core.dir/core/device.cpp.o"
  "CMakeFiles/msbist_core.dir/core/device.cpp.o.d"
  "CMakeFiles/msbist_core.dir/core/report.cpp.o"
  "CMakeFiles/msbist_core.dir/core/report.cpp.o.d"
  "libmsbist_core.a"
  "libmsbist_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msbist_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
