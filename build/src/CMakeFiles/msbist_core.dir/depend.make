# Empty dependencies file for msbist_core.
# This may be replaced when dependencies are built.
