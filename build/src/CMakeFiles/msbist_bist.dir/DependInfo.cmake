
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bist/controller.cpp" "src/CMakeFiles/msbist_bist.dir/bist/controller.cpp.o" "gcc" "src/CMakeFiles/msbist_bist.dir/bist/controller.cpp.o.d"
  "/root/repo/src/bist/level_sensor.cpp" "src/CMakeFiles/msbist_bist.dir/bist/level_sensor.cpp.o" "gcc" "src/CMakeFiles/msbist_bist.dir/bist/level_sensor.cpp.o.d"
  "/root/repo/src/bist/overhead.cpp" "src/CMakeFiles/msbist_bist.dir/bist/overhead.cpp.o" "gcc" "src/CMakeFiles/msbist_bist.dir/bist/overhead.cpp.o.d"
  "/root/repo/src/bist/ramp_generator.cpp" "src/CMakeFiles/msbist_bist.dir/bist/ramp_generator.cpp.o" "gcc" "src/CMakeFiles/msbist_bist.dir/bist/ramp_generator.cpp.o.d"
  "/root/repo/src/bist/signature_compressor.cpp" "src/CMakeFiles/msbist_bist.dir/bist/signature_compressor.cpp.o" "gcc" "src/CMakeFiles/msbist_bist.dir/bist/signature_compressor.cpp.o.d"
  "/root/repo/src/bist/step_generator.cpp" "src/CMakeFiles/msbist_bist.dir/bist/step_generator.cpp.o" "gcc" "src/CMakeFiles/msbist_bist.dir/bist/step_generator.cpp.o.d"
  "/root/repo/src/bist/test_access.cpp" "src/CMakeFiles/msbist_bist.dir/bist/test_access.cpp.o" "gcc" "src/CMakeFiles/msbist_bist.dir/bist/test_access.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/msbist_adc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/msbist_digital.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/msbist_analog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/msbist_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/msbist_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
