# Empty compiler generated dependencies file for msbist_bist.
# This may be replaced when dependencies are built.
