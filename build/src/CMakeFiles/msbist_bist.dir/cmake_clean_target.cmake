file(REMOVE_RECURSE
  "libmsbist_bist.a"
)
