file(REMOVE_RECURSE
  "CMakeFiles/msbist_bist.dir/bist/controller.cpp.o"
  "CMakeFiles/msbist_bist.dir/bist/controller.cpp.o.d"
  "CMakeFiles/msbist_bist.dir/bist/level_sensor.cpp.o"
  "CMakeFiles/msbist_bist.dir/bist/level_sensor.cpp.o.d"
  "CMakeFiles/msbist_bist.dir/bist/overhead.cpp.o"
  "CMakeFiles/msbist_bist.dir/bist/overhead.cpp.o.d"
  "CMakeFiles/msbist_bist.dir/bist/ramp_generator.cpp.o"
  "CMakeFiles/msbist_bist.dir/bist/ramp_generator.cpp.o.d"
  "CMakeFiles/msbist_bist.dir/bist/signature_compressor.cpp.o"
  "CMakeFiles/msbist_bist.dir/bist/signature_compressor.cpp.o.d"
  "CMakeFiles/msbist_bist.dir/bist/step_generator.cpp.o"
  "CMakeFiles/msbist_bist.dir/bist/step_generator.cpp.o.d"
  "CMakeFiles/msbist_bist.dir/bist/test_access.cpp.o"
  "CMakeFiles/msbist_bist.dir/bist/test_access.cpp.o.d"
  "libmsbist_bist.a"
  "libmsbist_bist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msbist_bist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
