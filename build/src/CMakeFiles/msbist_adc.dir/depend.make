# Empty dependencies file for msbist_adc.
# This may be replaced when dependencies are built.
