
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adc/dac.cpp" "src/CMakeFiles/msbist_adc.dir/adc/dac.cpp.o" "gcc" "src/CMakeFiles/msbist_adc.dir/adc/dac.cpp.o.d"
  "/root/repo/src/adc/dual_slope.cpp" "src/CMakeFiles/msbist_adc.dir/adc/dual_slope.cpp.o" "gcc" "src/CMakeFiles/msbist_adc.dir/adc/dual_slope.cpp.o.d"
  "/root/repo/src/adc/metrics.cpp" "src/CMakeFiles/msbist_adc.dir/adc/metrics.cpp.o" "gcc" "src/CMakeFiles/msbist_adc.dir/adc/metrics.cpp.o.d"
  "/root/repo/src/adc/sigma_delta.cpp" "src/CMakeFiles/msbist_adc.dir/adc/sigma_delta.cpp.o" "gcc" "src/CMakeFiles/msbist_adc.dir/adc/sigma_delta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/msbist_analog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/msbist_digital.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/msbist_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/msbist_circuit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
