file(REMOVE_RECURSE
  "CMakeFiles/msbist_adc.dir/adc/dac.cpp.o"
  "CMakeFiles/msbist_adc.dir/adc/dac.cpp.o.d"
  "CMakeFiles/msbist_adc.dir/adc/dual_slope.cpp.o"
  "CMakeFiles/msbist_adc.dir/adc/dual_slope.cpp.o.d"
  "CMakeFiles/msbist_adc.dir/adc/metrics.cpp.o"
  "CMakeFiles/msbist_adc.dir/adc/metrics.cpp.o.d"
  "CMakeFiles/msbist_adc.dir/adc/sigma_delta.cpp.o"
  "CMakeFiles/msbist_adc.dir/adc/sigma_delta.cpp.o.d"
  "libmsbist_adc.a"
  "libmsbist_adc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msbist_adc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
