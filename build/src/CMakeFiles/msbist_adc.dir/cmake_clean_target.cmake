file(REMOVE_RECURSE
  "libmsbist_adc.a"
)
