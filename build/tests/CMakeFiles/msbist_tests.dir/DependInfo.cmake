
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/adc_test.cpp" "tests/CMakeFiles/msbist_tests.dir/adc_test.cpp.o" "gcc" "tests/CMakeFiles/msbist_tests.dir/adc_test.cpp.o.d"
  "/root/repo/tests/analog_macros_test.cpp" "tests/CMakeFiles/msbist_tests.dir/analog_macros_test.cpp.o" "gcc" "tests/CMakeFiles/msbist_tests.dir/analog_macros_test.cpp.o.d"
  "/root/repo/tests/bist_access_test.cpp" "tests/CMakeFiles/msbist_tests.dir/bist_access_test.cpp.o" "gcc" "tests/CMakeFiles/msbist_tests.dir/bist_access_test.cpp.o.d"
  "/root/repo/tests/bist_test.cpp" "tests/CMakeFiles/msbist_tests.dir/bist_test.cpp.o" "gcc" "tests/CMakeFiles/msbist_tests.dir/bist_test.cpp.o.d"
  "/root/repo/tests/circuit_ac_test.cpp" "tests/CMakeFiles/msbist_tests.dir/circuit_ac_test.cpp.o" "gcc" "tests/CMakeFiles/msbist_tests.dir/circuit_ac_test.cpp.o.d"
  "/root/repo/tests/circuit_linear_test.cpp" "tests/CMakeFiles/msbist_tests.dir/circuit_linear_test.cpp.o" "gcc" "tests/CMakeFiles/msbist_tests.dir/circuit_linear_test.cpp.o.d"
  "/root/repo/tests/circuit_mos_test.cpp" "tests/CMakeFiles/msbist_tests.dir/circuit_mos_test.cpp.o" "gcc" "tests/CMakeFiles/msbist_tests.dir/circuit_mos_test.cpp.o.d"
  "/root/repo/tests/circuit_parser_test.cpp" "tests/CMakeFiles/msbist_tests.dir/circuit_parser_test.cpp.o" "gcc" "tests/CMakeFiles/msbist_tests.dir/circuit_parser_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/msbist_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/msbist_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/digital_test.cpp" "tests/CMakeFiles/msbist_tests.dir/digital_test.cpp.o" "gcc" "tests/CMakeFiles/msbist_tests.dir/digital_test.cpp.o.d"
  "/root/repo/tests/dsp_convolution_correlation_test.cpp" "tests/CMakeFiles/msbist_tests.dir/dsp_convolution_correlation_test.cpp.o" "gcc" "tests/CMakeFiles/msbist_tests.dir/dsp_convolution_correlation_test.cpp.o.d"
  "/root/repo/tests/dsp_fft_test.cpp" "tests/CMakeFiles/msbist_tests.dir/dsp_fft_test.cpp.o" "gcc" "tests/CMakeFiles/msbist_tests.dir/dsp_fft_test.cpp.o.d"
  "/root/repo/tests/dsp_matrix_test.cpp" "tests/CMakeFiles/msbist_tests.dir/dsp_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/msbist_tests.dir/dsp_matrix_test.cpp.o.d"
  "/root/repo/tests/dsp_misc_test.cpp" "tests/CMakeFiles/msbist_tests.dir/dsp_misc_test.cpp.o" "gcc" "tests/CMakeFiles/msbist_tests.dir/dsp_misc_test.cpp.o.d"
  "/root/repo/tests/dsp_prbs_test.cpp" "tests/CMakeFiles/msbist_tests.dir/dsp_prbs_test.cpp.o" "gcc" "tests/CMakeFiles/msbist_tests.dir/dsp_prbs_test.cpp.o.d"
  "/root/repo/tests/dsp_state_space_test.cpp" "tests/CMakeFiles/msbist_tests.dir/dsp_state_space_test.cpp.o" "gcc" "tests/CMakeFiles/msbist_tests.dir/dsp_state_space_test.cpp.o.d"
  "/root/repo/tests/dsp_vec_test.cpp" "tests/CMakeFiles/msbist_tests.dir/dsp_vec_test.cpp.o" "gcc" "tests/CMakeFiles/msbist_tests.dir/dsp_vec_test.cpp.o.d"
  "/root/repo/tests/dsp_ztransfer_polynomial_test.cpp" "tests/CMakeFiles/msbist_tests.dir/dsp_ztransfer_polynomial_test.cpp.o" "gcc" "tests/CMakeFiles/msbist_tests.dir/dsp_ztransfer_polynomial_test.cpp.o.d"
  "/root/repo/tests/extensions_test.cpp" "tests/CMakeFiles/msbist_tests.dir/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/msbist_tests.dir/extensions_test.cpp.o.d"
  "/root/repo/tests/faults_test.cpp" "tests/CMakeFiles/msbist_tests.dir/faults_test.cpp.o" "gcc" "tests/CMakeFiles/msbist_tests.dir/faults_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/msbist_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/msbist_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/msbist_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/msbist_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/tsrt_pole_test.cpp" "tests/CMakeFiles/msbist_tests.dir/tsrt_pole_test.cpp.o" "gcc" "tests/CMakeFiles/msbist_tests.dir/tsrt_pole_test.cpp.o.d"
  "/root/repo/tests/tsrt_test.cpp" "tests/CMakeFiles/msbist_tests.dir/tsrt_test.cpp.o" "gcc" "tests/CMakeFiles/msbist_tests.dir/tsrt_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/msbist_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/msbist_bist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/msbist_adc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/msbist_tsrt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/msbist_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/msbist_analog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/msbist_digital.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/msbist_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/msbist_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
