# Empty dependencies file for msbist_tests.
# This may be replaced when dependencies are built.
