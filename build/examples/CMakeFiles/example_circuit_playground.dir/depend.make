# Empty dependencies file for example_circuit_playground.
# This may be replaced when dependencies are built.
