file(REMOVE_RECURSE
  "CMakeFiles/example_circuit_playground.dir/circuit_playground.cpp.o"
  "CMakeFiles/example_circuit_playground.dir/circuit_playground.cpp.o.d"
  "example_circuit_playground"
  "example_circuit_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_circuit_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
