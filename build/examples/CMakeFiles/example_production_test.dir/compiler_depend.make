# Empty compiler generated dependencies file for example_production_test.
# This may be replaced when dependencies are built.
