file(REMOVE_RECURSE
  "CMakeFiles/example_production_test.dir/production_test.cpp.o"
  "CMakeFiles/example_production_test.dir/production_test.cpp.o.d"
  "example_production_test"
  "example_production_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_production_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
