# Empty compiler generated dependencies file for example_fault_diagnosis.
# This may be replaced when dependencies are built.
