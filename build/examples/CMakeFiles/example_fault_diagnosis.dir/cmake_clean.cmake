file(REMOVE_RECURSE
  "CMakeFiles/example_fault_diagnosis.dir/fault_diagnosis.cpp.o"
  "CMakeFiles/example_fault_diagnosis.dir/fault_diagnosis.cpp.o.d"
  "example_fault_diagnosis"
  "example_fault_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fault_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
