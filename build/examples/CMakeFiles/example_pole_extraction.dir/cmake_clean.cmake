file(REMOVE_RECURSE
  "CMakeFiles/example_pole_extraction.dir/pole_extraction.cpp.o"
  "CMakeFiles/example_pole_extraction.dir/pole_extraction.cpp.o.d"
  "example_pole_extraction"
  "example_pole_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_pole_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
