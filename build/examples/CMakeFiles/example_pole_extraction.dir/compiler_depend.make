# Empty compiler generated dependencies file for example_pole_extraction.
# This may be replaced when dependencies are built.
