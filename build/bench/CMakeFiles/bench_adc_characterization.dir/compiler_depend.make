# Empty compiler generated dependencies file for bench_adc_characterization.
# This may be replaced when dependencies are built.
