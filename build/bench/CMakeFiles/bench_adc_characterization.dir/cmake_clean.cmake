file(REMOVE_RECURSE
  "CMakeFiles/bench_adc_characterization.dir/bench_adc_characterization.cpp.o"
  "CMakeFiles/bench_adc_characterization.dir/bench_adc_characterization.cpp.o.d"
  "bench_adc_characterization"
  "bench_adc_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adc_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
