file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_prbs.dir/bench_ablation_prbs.cpp.o"
  "CMakeFiles/bench_ablation_prbs.dir/bench_ablation_prbs.cpp.o.d"
  "bench_ablation_prbs"
  "bench_ablation_prbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_prbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
