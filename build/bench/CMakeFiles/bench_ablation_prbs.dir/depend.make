# Empty dependencies file for bench_ablation_prbs.
# This may be replaced when dependencies are built.
