# Empty dependencies file for bench_ramp_test.
# This may be replaced when dependencies are built.
