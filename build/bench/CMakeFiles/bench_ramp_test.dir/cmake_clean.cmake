file(REMOVE_RECURSE
  "CMakeFiles/bench_ramp_test.dir/bench_ramp_test.cpp.o"
  "CMakeFiles/bench_ramp_test.dir/bench_ramp_test.cpp.o.d"
  "bench_ramp_test"
  "bench_ramp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ramp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
