file(REMOVE_RECURSE
  "CMakeFiles/bench_dac_loopback.dir/bench_dac_loopback.cpp.o"
  "CMakeFiles/bench_dac_loopback.dir/bench_dac_loopback.cpp.o.d"
  "bench_dac_loopback"
  "bench_dac_loopback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dac_loopback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
