# Empty dependencies file for bench_dac_loopback.
# This may be replaced when dependencies are built.
