
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_monotonicity.cpp" "bench/CMakeFiles/bench_monotonicity.dir/bench_monotonicity.cpp.o" "gcc" "bench/CMakeFiles/bench_monotonicity.dir/bench_monotonicity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/msbist_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/msbist_bist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/msbist_adc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/msbist_tsrt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/msbist_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/msbist_analog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/msbist_digital.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/msbist_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/msbist_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
