file(REMOVE_RECURSE
  "CMakeFiles/bench_monotonicity.dir/bench_monotonicity.cpp.o"
  "CMakeFiles/bench_monotonicity.dir/bench_monotonicity.cpp.o.d"
  "bench_monotonicity"
  "bench_monotonicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_monotonicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
