# Empty dependencies file for bench_monotonicity.
# This may be replaced when dependencies are built.
