# Empty compiler generated dependencies file for bench_transient_detection.
# This may be replaced when dependencies are built.
