file(REMOVE_RECURSE
  "CMakeFiles/bench_transient_detection.dir/bench_transient_detection.cpp.o"
  "CMakeFiles/bench_transient_detection.dir/bench_transient_detection.cpp.o.d"
  "bench_transient_detection"
  "bench_transient_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transient_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
