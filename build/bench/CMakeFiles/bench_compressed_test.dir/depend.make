# Empty dependencies file for bench_compressed_test.
# This may be replaced when dependencies are built.
