file(REMOVE_RECURSE
  "CMakeFiles/bench_compressed_test.dir/bench_compressed_test.cpp.o"
  "CMakeFiles/bench_compressed_test.dir/bench_compressed_test.cpp.o.d"
  "bench_compressed_test"
  "bench_compressed_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compressed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
