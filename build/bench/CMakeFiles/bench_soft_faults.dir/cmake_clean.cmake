file(REMOVE_RECURSE
  "CMakeFiles/bench_soft_faults.dir/bench_soft_faults.cpp.o"
  "CMakeFiles/bench_soft_faults.dir/bench_soft_faults.cpp.o.d"
  "bench_soft_faults"
  "bench_soft_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_soft_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
