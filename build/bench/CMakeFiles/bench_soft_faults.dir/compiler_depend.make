# Empty compiler generated dependencies file for bench_soft_faults.
# This may be replaced when dependencies are built.
