file(REMOVE_RECURSE
  "CMakeFiles/bench_sigma_delta.dir/bench_sigma_delta.cpp.o"
  "CMakeFiles/bench_sigma_delta.dir/bench_sigma_delta.cpp.o.d"
  "bench_sigma_delta"
  "bench_sigma_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sigma_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
