# Empty dependencies file for bench_sigma_delta.
# This may be replaced when dependencies are built.
