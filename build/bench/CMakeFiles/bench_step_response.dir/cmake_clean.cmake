file(REMOVE_RECURSE
  "CMakeFiles/bench_step_response.dir/bench_step_response.cpp.o"
  "CMakeFiles/bench_step_response.dir/bench_step_response.cpp.o.d"
  "bench_step_response"
  "bench_step_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_step_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
