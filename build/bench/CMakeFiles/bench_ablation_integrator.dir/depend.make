# Empty dependencies file for bench_ablation_integrator.
# This may be replaced when dependencies are built.
