file(REMOVE_RECURSE
  "CMakeFiles/bench_digital_test.dir/bench_digital_test.cpp.o"
  "CMakeFiles/bench_digital_test.dir/bench_digital_test.cpp.o.d"
  "bench_digital_test"
  "bench_digital_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_digital_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
