# Empty compiler generated dependencies file for bench_digital_test.
# This may be replaced when dependencies are built.
