// Batch yield: the paper's fabricated batch of 10 devices, then a
// 1000-device Monte-Carlo extrapolation of the same production flow.
//
//   $ ./example_batch_yield [extrapolation_count] [--json] [--chaos]
//
// Part 1 reproduces the paper's result ("All devices passed the
// analogue, digital and compressed tests") on 10 process-varied dies
// with the full plan: every BIST tier, the full-spec metrics sweep, and
// the fault-injection spot check.
//
// Part 2 runs the same screen over a 1000-die lot on all hardware
// threads and prints the yield plus the parametric distributions a
// process engineer would read off the lot (offset, gain, INL, DNL,
// conversion time).
//
// --chaos seeds the extrapolation lot with dies whose test procedure
// hits hard solver failures (every 7th die aborts with a typed
// core::SolverError). It demonstrates graceful degradation: the batch
// still completes with exit 0, the affected dies are reported as
// degraded fails with structured Failure records, and the report's
// degraded_count tallies them. CI's chaos gate asserts exactly this.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/msbist.h"
#include "service/dispatch.h"

namespace {

using namespace msbist;

const char* mark(bool ok) { return ok ? "+" : "X"; }

void print_paper_batch(const production::BatchReport& rep) {
  core::Table table({"die", "a", "r", "d", "c", "offset", "gain", "INL",
                     "DNL", "spot", "verdict"});
  for (const production::DeviceOutcome& d : rep.devices) {
    table.add_row(
        {std::to_string(d.index + 1), mark(d.bist.analog.pass),
         mark(d.bist.ramp.pass), mark(d.bist.digital.pass),
         mark(d.bist.compressed.pass), core::Table::num(d.metrics.offset_lsb),
         core::Table::num(d.metrics.gain_error_lsb),
         core::Table::num(d.metrics.max_abs_inl),
         core::Table::num(d.metrics.max_abs_dnl),
         std::to_string(d.spot_check.detected) + "/" +
             std::to_string(d.spot_check.injected),
         d.outcome.pass ? "PASS" : "FAIL"});
  }
  std::printf("== the paper's batch: 10 fabricated devices ==\n\n%s\n%s\n\n",
              table.to_string().c_str(), rep.summary().c_str());
}

void print_stats_row(core::Table& t, const char* name,
                     const production::ParamStats& s, const char* unit) {
  t.add_row({name, core::Table::num(s.mean), core::Table::num(s.sigma),
             core::Table::num(s.p05), core::Table::num(s.p50),
             core::Table::num(s.p95), core::Table::num(s.min),
             core::Table::num(s.max), unit});
}

void print_extrapolation(const production::BatchReport& rep) {
  std::printf("== %zu-device Monte-Carlo extrapolation ==\n\n",
              rep.devices.size());
  core::Table stats({"parameter", "mean", "sigma", "p05", "p50", "p95", "min",
                     "max", "unit"});
  print_stats_row(stats, "offset", rep.offset_lsb, "LSB");
  print_stats_row(stats, "gain error", rep.gain_error_lsb, "LSB");
  print_stats_row(stats, "max |INL|", rep.max_abs_inl, "LSB");
  print_stats_row(stats, "max |DNL|", rep.max_abs_dnl, "LSB");
  print_stats_row(stats, "conversion time", rep.conversion_time_s, "s");
  print_stats_row(stats, "fall time (0 V step)", rep.first_step_fall_time_s,
                  "s");
  std::printf("%s\n", stats.to_string().c_str());

  core::Table tiers({"tier", "failing devices"});
  for (bist::Tier t : bist::kAllTiers) {
    tiers.add_row(
        {bist::to_string(t),
         std::to_string(
             rep.tier_failures[static_cast<std::size_t>(t)].size())});
  }
  std::printf("%s\n%s\n", tiers.to_string().c_str(), rep.summary().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t extrapolation = 1000;
  bool json = false;
  bool chaos = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      chaos = true;
    } else {
      extrapolation = static_cast<std::size_t>(std::atol(argv[i]));
    }
  }

  // Part 1: the fabricated lot (the same dies core::Batch::paper_batch
  // screens), under the full plan, through the unified job-request entry
  // point the msbistd daemon also uses. Thread count never changes the
  // report.
  core::JobRequest paper_job;
  paper_job.kind = core::JobKind::kBatch;
  paper_job.label = "paper batch";
  paper_job.full_spec = true;
  paper_job.fault_spot_check = true;
  paper_job.threads = 0;  // hardware concurrency
  const service::DispatchResult paper_res =
      service::dispatch(paper_job, production::paper_population(), {});
  const production::BatchReport& paper_rep = *paper_res.batch;

  // Part 2: a fresh Monte-Carlo lot from one batch seed.
  core::JobRequest lot_job;
  lot_job.kind = core::JobKind::kBatch;
  lot_job.label = "extrapolation lot";
  lot_job.device_count = extrapolation;
  lot_job.batch_seed = 1995;
  lot_job.full_spec = true;
  lot_job.fault_spot_check = false;  // testability already proven on 10
  lot_job.threads = 0;

  production::BatchReport lot_rep;
  if (chaos) {
    production::BatchConfig lot;
    lot.device_count = extrapolation;
    lot.batch_seed = 1995;
    lot.plan.tiers = service::parse_tiers(lot_job.tiers);
    lot.plan.full_spec = lot_job.full_spec;
    lot.plan.fault_spot_check = lot_job.fault_spot_check;
    // Deterministic fault seeding: every 7th die's tester hits a hard
    // solver failure mid-procedure. run_batch must isolate each one into
    // a degraded failing outcome instead of aborting the lot.
    const production::DeviceTestFn chaotic =
        [](const production::DieSpec& spec, const production::TestPlan& plan) {
          // Labels are "die 1".."die N": key off the position so the
          // seeded set is identical for any batch seed or thread count.
          const int position = std::atoi(spec.label.c_str() + 4);
          if (position % 7 == 0) {
            core::Failure f;
            f.code = core::ErrorCode::kNonConvergent;
            f.analysis = "transient";
            f.detail = "chaos-injected convergence failure";
            core::throw_failure(std::move(f));
          }
          return production::test_device(spec, plan);
        };
    lot_rep = production::run_batch(production::make_population(lot),
                                    lot.plan, /*threads=*/0, chaotic);
  } else {
    // The clean path goes through the same dispatcher as the daemon.
    lot_rep = *service::dispatch(lot_job).batch;
  }

  if (json) {
    core::JsonWriter w;
    w.begin_object();
    w.key("paper_batch");
    paper_rep.to_json(w);
    w.key("extrapolation");
    lot_rep.to_json(w);
    w.end_object();
    std::printf("%s\n", w.str().c_str());
  } else {
    print_paper_batch(paper_rep);
    print_extrapolation(lot_rep);
  }

  // The paper's headline: all 10 fabricated devices passed.
  return paper_rep.outcome().pass ? 0 : 1;
}
