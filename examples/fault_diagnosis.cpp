// Transient-response fault diagnosis on the switched-capacitor integrator
// (the paper's circuit 3) — the "second technique" walkthrough.
//
//   $ ./example_fault_diagnosis [paper-node]
//
// Builds the 15-transistor SC integrator, injects a stuck-at fault at the
// given op-amp node (default: node 7, the first-stage output), runs the
// PRBS transient, extracts the z-domain model by ARX fit (the HSPICE ->
// Matlab substitute), and compares impulse responses against the golden
// circuit. Also prints the correlation-signature view and the dynamic-Idd
// view so the three detection channels can be compared on one fault.
#include <cstdio>
#include <cstdlib>

#include "core/msbist.h"

int main(int argc, char** argv) {
  using namespace msbist;
  using namespace msbist::tsrt;

  const int node = argc > 1 ? std::atoi(argv[1]) : 7;
  if (node < 1 || node > 9) {
    std::fprintf(stderr, "usage: %s [paper-node 1..9]\n", argv[0]);
    return 2;
  }
  const auto fault = faults::FaultSpec::stuck_at(node, /*high=*/false);

  std::printf("== transient-response diagnosis: %s on circuit 3 ==\n\n",
              fault.label.c_str());

  const TsrtOptions opts = paper_options(CircuitKind::kScIntegratorAlone);
  const TsrtRun golden =
      run_transient_test(CircuitKind::kScIntegratorAlone, std::nullopt, opts);
  const TsrtRun faulty =
      run_transient_test(CircuitKind::kScIntegratorAlone, fault, opts);

  // Model extraction (approach 2).
  const ArxFit gfit =
      fit_sc_cycles(golden.stimulus, golden.response, golden.dt, kScCycleSeconds, 2.5);
  const ArxFit ffit =
      fit_sc_cycles(faulty.stimulus, faulty.response, faulty.dt, kScCycleSeconds, 2.5);

  std::printf("golden model:  H(z) = %+.4f z^-1 / (1 %+.4f z^-1)\n", gfit.b, -gfit.a);
  std::printf("               (design equation: -1/6.8 = -0.1471, pole at 1)\n");
  std::printf("faulty model:  H(z) = %+.4f z^-1 / (1 %+.4f z^-1)\n\n", ffit.b, -ffit.a);

  // Impulse responses side by side.
  const auto gh = gfit.impulse(12);
  const auto fh = ffit.impulse(12);
  std::printf("impulse responses (first 12 cycles):\n  n   golden    faulty\n");
  for (std::size_t n = 0; n < gh.size(); ++n) {
    std::printf("  %2zu  %+.4f  %+.4f\n", n, gh[n], fh[n]);
  }

  const double imp = impulse_detection_percent(gfit, ffit);
  const double corr = correlation_detection_percent(golden, faulty);
  const double idd = idd_detection_percent(golden, faulty);
  std::printf("\ndetection instances:\n");
  std::printf("  approach 2 (impulse response):   %5.1f %%\n", imp);
  std::printf("  approach 1 (correlation):        %5.1f %%\n", corr);
  std::printf("  dynamic Idd (refs [10, 11]):     %5.1f %%\n", idd);

  const bool caught = is_detected(std::max({imp, corr, idd}));
  std::printf("\nverdict: fault %s\n", caught ? "DETECTED" : "escaped");

  if (std::abs(ffit.b) < 0.02) {
    std::printf("diagnosis: integrator signal path dead (b ~ 0) — op-amp "
                "internal node clamped\n");
  } else if (std::abs(ffit.b - gfit.b) > 0.02) {
    std::printf("diagnosis: integration gain shifted — capacitor ratio or "
                "charge-transfer fault\n");
  } else if (std::abs(ffit.a - gfit.a) > 0.02) {
    std::printf("diagnosis: integrator pole moved — leakage or feedback fault\n");
  } else {
    std::printf("diagnosis: transfer intact; check bias/supply current\n");
  }
  return caught ? 0 : 1;
}
