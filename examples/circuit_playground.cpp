// Circuit-simulator walkthrough: the SPICE-like substrate on its own.
//
//   $ ./example_circuit_playground
//
// Three mini-studies using the public circuit API directly:
//   1. DC transfer of a CMOS inverter (5 um level-1 devices).
//   2. DC sweep of the OP1 op-amp's open-loop transfer around mid-rail.
//   3. Transient of the switched-capacitor integrator staircase,
//     verifying the design equation H(z) = z^-1 / (6.8 (1 - z^-1))
//     cycle by cycle.
//   4. Netlist ERC: the static-analysis pass pipeline catching structural
//     defects (floating node, capacitor-only island, source conflicts)
//     before the solver sees them, plus BIST observability of the OP1
//     cell from its output tap.
#include <cstdio>
#include <memory>

#include "core/msbist.h"

namespace {

using namespace msbist;
using circuit::kGround;

void inverter_transfer() {
  circuit::Netlist n;
  const auto vdd = n.node("vdd");
  const auto in = n.node("in");
  const auto out = n.node("out");
  n.add<circuit::VoltageSource>(vdd, kGround, 5.0);
  auto* vin = n.add<circuit::VoltageSource>(in, kGround, 0.0);
  n.add<circuit::Mosfet>(circuit::MosType::kNmos, out, in, kGround,
                         circuit::MosParams::nmos_5um(10.0));
  n.add<circuit::Mosfet>(circuit::MosType::kPmos, out, in, vdd,
                         circuit::MosParams::pmos_5um(30.0));

  std::printf("1) CMOS inverter DC transfer (5 um level-1)\n   vin:  ");
  std::vector<double> sweep;
  for (int i = 0; i <= 10; ++i) sweep.push_back(0.5 * i);
  const auto sweep_result = circuit::dc_sweep(
      n, sweep, [&](circuit::Netlist&, double v) { vin->set_dc(v); }, "out");
  const std::vector<double>& vout = sweep_result.values;
  for (double v : sweep) std::printf("%5.2f ", v);
  std::printf("\n   vout: ");
  for (double v : vout) std::printf("%5.2f ", v);
  std::printf("\n\n");
}

void op1_open_loop() {
  circuit::Netlist n;
  const analog::Op1Nodes nodes = analog::build_op1(n);
  auto* vplus = n.add<circuit::VoltageSource>(n.find_node(nodes.in_plus), kGround, 2.5);
  n.add<circuit::VoltageSource>(n.find_node(nodes.in_minus), kGround, 2.5);

  std::printf("2) OP1 open-loop transfer around mid-rail (Figure 3 cell)\n");
  std::printf("   vid [mV]   vout [V]\n");
  for (double vid_mv : {-20.0, -5.0, -1.0, 0.0, 1.0, 5.0, 20.0}) {
    vplus->set_dc(2.5 + vid_mv * 1e-3);
    const circuit::DcResult op = circuit::dc_operating_point(n);
    std::printf("   %+7.1f    %6.3f\n", vid_mv, op.voltage(nodes.out));
  }
  std::printf("\n");
}

void sc_staircase() {
  circuit::Netlist n;
  analog::ScIntegratorBuildOptions opts;
  opts.dc_feedback_r = 1e9;  // near-ideal integrator for the staircase
  const analog::ScIntegratorNodes nodes = build_sc_integrator(n, opts);
  // Constant input 100 mV above mid-rail: each SC cycle must step the
  // (inverting) output down by 100 mV / 6.8 = 14.7 mV.
  n.add<circuit::VoltageSource>(n.find_node(nodes.input), kGround, 2.6);

  circuit::TransientOptions topts;
  topts.dt = 0.25e-6;
  topts.t_stop = 10 * opts.clock_period;
  topts.method = circuit::Integration::kBackwardEuler;
  const circuit::TransientResult res = circuit::transient(n, topts);
  const auto& out = res.voltage(nodes.output);

  std::printf("3) SC integrator staircase, Vin = mid-rail + 100 mV\n");
  std::printf("   design equation step: -100 mV / 6.8 = -14.7 mV per cycle\n");
  const auto per_cycle = static_cast<std::size_t>(opts.clock_period / topts.dt);
  double prev = out[per_cycle - 1];
  for (std::size_t cyc = 2; cyc <= 10; ++cyc) {
    const double v = out[cyc * per_cycle - 1];
    std::printf("   cycle %2zu: out = %.4f V (step %+.1f mV)\n", cyc, v,
                (v - prev) * 1e3);
    prev = v;
  }
}

void erc_walkthrough() {
  std::printf("4) Netlist ERC: static analysis before simulation\n");

  // A deliberately broken netlist: an orphan node, a capacitor-only
  // island, and two ideal sources fighting over the same node pair.
  circuit::Netlist bad;
  const auto a = bad.node("a");
  const auto island = bad.node("island");
  bad.node("orphan");
  bad.add<circuit::VoltageSource>(a, circuit::kGround, 5.0);
  bad.name_last("V1");
  bad.add<circuit::VoltageSource>(a, circuit::kGround, 3.3);
  bad.name_last("V2");
  bad.add<circuit::Capacitor>(a, island, 1e-9);
  const analysis::Report report = analysis::check(bad);
  std::printf("   broken netlist -> %zu diagnostics (%zu errors):\n",
              report.size(), report.count(analysis::Severity::kError));
  for (const auto& d : report.diagnostics()) {
    std::printf("   %s\n", d.format().c_str());
  }

  // The same defects no longer reach Newton-Raphson: the DC entry point
  // rejects the netlist with the report above as the exception text.
  try {
    circuit::dc_operating_point(bad);
  } catch (const analysis::ErcError& e) {
    std::printf("   dc_operating_point -> rejected with ErcError (%zu errors)\n",
                e.report().count(analysis::Severity::kError));
  }

  // BIST observability of the healthy OP1 cell, observed only at its
  // output the way the ramp/level-sensor tiers do.
  circuit::Netlist op1;
  const analog::Op1Nodes nodes = analog::build_op1(op1);
  op1.add<circuit::VoltageSource>(op1.find_node(nodes.in_plus), circuit::kGround, 2.5);
  op1.add<circuit::VoltageSource>(op1.find_node(nodes.in_minus), circuit::kGround, 2.5);
  const analysis::Report obs =
      analysis::Runner::with_testability({nodes.out}).run(op1);
  const auto blind = obs.for_rule("testability");
  std::printf("   OP1 observed at %s: %zu unobservable node(s)\n",
              nodes.out.c_str(), blind.size());
  for (const auto& d : blind) std::printf("   %s\n", d.format().c_str());
}

}  // namespace

int main() {
  std::printf("== msbist circuit playground ==\n\n");
  inverter_transfer();
  op1_open_loop();
  sc_staircase();
  erc_walkthrough();
  return 0;
}
