// Production-test scenario: screen a mixed lot of dies with the on-chip
// BIST flow and bin them, diagnosing failing dies to a sub-macro.
//
//   $ ./example_production_test [--json]
//
// The lot contains healthy dies plus dies with deliberately injected
// macro-level faults (stuck counter bit, stuck latch bits, frozen control
// FSM, large comparator offset). The example shows the paper's diagnosis
// idea: which BIST tier fails points at which sub-macro is faulty
// ("counter submacro faults will show in the INL or DNL error or as
// regular missed codes; faults in the output latch ... multiple incorrect
// output codes; control circuit faults will stop the conversion").
//
// --json emits the screening run through the unified report API
// (core::JsonWriter / BistReport::to_json) instead of the text table.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/msbist.h"

namespace {

using namespace msbist;

struct LotEntry {
  std::string description;
  adc::DualSlopeAdcConfig config;
};

std::vector<LotEntry> build_lot() {
  std::vector<LotEntry> lot;
  const adc::DualSlopeAdcConfig healthy = adc::DualSlopeAdcConfig::characterized();
  for (int i = 0; i < 4; ++i) lot.push_back({"healthy", healthy});

  adc::DualSlopeAdcConfig counter_fault = healthy;
  counter_fault.counter_faults.stuck_bit = 4;
  lot.push_back({"counter stuck bit 4", counter_fault});

  adc::DualSlopeAdcConfig miss = healthy;
  miss.counter_faults.miss_every = 16;
  lot.push_back({"counter misses every 16th pulse", miss});

  adc::DualSlopeAdcConfig latch_fault = healthy;
  latch_fault.latch_faults.stuck_high_mask = 0x44;
  lot.push_back({"latch bits 2 and 6 stuck high", latch_fault});

  adc::DualSlopeAdcConfig control_fault = healthy;
  control_fault.control_faults.stuck_phase = digital::ConvPhase::kIntegrate;
  lot.push_back({"control FSM frozen in integrate", control_fault});

  adc::DualSlopeAdcConfig cmp_fault = healthy;
  cmp_fault.comparator.offset_v = 0.15;
  lot.push_back({"comparator offset 150 mV", cmp_fault});

  return lot;
}

std::string diagnose(const bist::BistReport& r) {
  if (r.pass) return "-";
  // The paper's fault-to-symptom map, inverted into a diagnosis.
  if (!r.digital.pass && r.digital.max_conversion_time_s > 5.6e-3) {
    return "control circuit (conversion stopped/slow)";
  }
  if (!r.digital.pass) return "control or counter timing";
  if (!r.analog.pass && !r.compressed.pass) {
    return "comparator or integrator (offset/gain path)";
  }
  if (!r.compressed.pass && !r.ramp.pass) return "output latch (multiple wrong codes)";
  if (!r.compressed.pass) return "counter or latch (code corruption)";
  if (!r.ramp.pass) return "integrator linearity / missing codes";
  if (!r.analog.pass) return "integrator time constant";
  return "unclassified analogue fault";
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;
  const auto lot = build_lot();
  core::Table table({"die", "injected condition", "a", "r", "d", "c", "verdict",
                     "diagnosis"});
  core::JsonWriter w;
  w.begin_object();
  core::write_report_envelope(w, "screening");
  w.key("dies").begin_array();
  std::size_t passed = 0;
  std::uint64_t seed = 100;
  for (std::size_t i = 0; i < lot.size(); ++i) {
    core::Device die(seed + i, lot[i].config);
    const bist::BistReport r = die.run_bist();
    if (r.pass) ++passed;
    const auto mark = [](bool ok) { return ok ? std::string("+") : std::string("X"); };
    table.add_row({std::to_string(i + 1), lot[i].description, mark(r.analog.pass),
                   mark(r.ramp.pass), mark(r.digital.pass),
                   mark(r.compressed.pass), r.pass ? "PASS" : "FAIL",
                   diagnose(r)});
    w.begin_object()
        .member("die", static_cast<std::uint64_t>(i + 1))
        .member("injected_condition", lot[i].description)
        .member("diagnosis", diagnose(r));
    w.key("bist");
    r.to_json(w);
    w.end_object();
  }
  w.end_array();
  w.member("passed", static_cast<std::uint64_t>(passed))
      .member("lot_size", static_cast<std::uint64_t>(lot.size()))
      .end_object();
  if (json) {
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf("== production screening of a %zu-die lot ==\n\n%s\n",
                lot.size(), table.to_string().c_str());
    std::printf("yield: %zu/%zu\n", passed, lot.size());
  }
  // The 4 healthy dies must pass and the 6 faulty ones must fail.
  return passed == 4 ? 0 : 1;
}
