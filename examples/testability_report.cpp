// Static testability walkthrough: analog SCOAP scores plus fault-universe
// collapsing on the paper's circuits, with the solver never invoked.
//
//   $ ./example_testability_report [--json]
//
// For circuit 1 (OP1 follower) and circuit 2 (SC integrator +
// comparator):
//   1. Score every node's controllability/observability from the BIST's
//      point of view (stimulus source drives, output-node tap).
//   2. Collapse the paper's fault universe against the clean netlist:
//      duplicate/symmetric faults fold onto one representative and faults
//      that cannot reach the tap are marked statically undetectable.
//   3. Rank candidate test points by marginal observability gain.
//
// --json emits the same content through the unified report API: each
// circuit's study is the exact "testability_study" document the msbistd
// daemon serves for a testability job, produced by the shared
// service::dispatch entry point.
#include <cstdio>
#include <cstring>

#include "core/msbist.h"
#include "service/dispatch.h"

namespace {

using namespace msbist;

struct Study {
  tsrt::CircuitKind kind;
  const char* circuit;  ///< wire name for the job request
};

void print_report(const analysis::TestabilityReport& rep,
                  const faults::CollapsedUniverse& cu) {
  std::printf("   taps:");
  for (const auto& t : rep.taps) std::printf(" %s", t.c_str());
  std::printf("  stimuli:");
  for (const auto& s : rep.stimuli) std::printf(" %s", s.c_str());
  std::printf("\n   mean controllability %.3f, mean observability %.3f\n",
              rep.mean_controllability, rep.mean_observability);
  std::printf("   node %20s  control  observe\n", "");
  for (const analysis::NodeTestability& n : rep.nodes) {
    if (!n.connected || n.rail) continue;
    std::printf("   %-25s  %6.3f   %6.3f%s%s\n", n.node.c_str(),
                n.controllability, n.observability, n.tap ? "  [tap]" : "",
                n.observability == 0.0 ? "  << unobservable" : "");
  }
  if (!rep.suggestions.empty()) {
    std::printf("   suggested test points:\n");
    for (const analysis::TestPointSuggestion& s : rep.suggestions) {
      std::printf("     tap %-20s gain %.3f (%zu newly observable)\n",
                  s.node.c_str(), s.gain, s.newly_observable);
    }
  }
  std::printf("   fault universe: %zu faults -> %zu simulated, %zu saved"
              " (%zu statically undetectable)\n",
              cu.universe.size(), cu.map.simulated_count(),
              cu.map.solves_saved(), cu.map.undetectable_count());
  for (std::size_t i = 0; i < cu.universe.size(); ++i) {
    if (!cu.map.is_representative(i)) {
      std::printf("     %-18s %s\n", cu.universe[i].label.c_str(),
                  cu.reasons[i].c_str());
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;

  const Study studies[] = {
      {tsrt::CircuitKind::kOp1Follower, "op1_follower"},
      {tsrt::CircuitKind::kScIntegratorComparator, "sc_integrator_comparator"},
  };

  if (!json) std::printf("== msbist static testability report ==\n\n");
  core::JsonWriter w;
  if (json) {
    w.begin_object();
    core::write_report_envelope(w, "testability_study_set");
    w.key("circuits").begin_array();
  }

  for (const Study& study : studies) {
    core::JobRequest job;
    job.kind = core::JobKind::kTestability;
    job.circuit = study.circuit;
    const service::DispatchResult res = service::dispatch(job);

    if (json) {
      // The per-circuit document is exactly what the daemon serves.
      w.raw_value(res.report_json);
    } else {
      const tsrt::ExampleCircuit c = tsrt::build_circuit(study.kind);
      std::printf("%s (%d transistors), observed at %s\n",
                  tsrt::circuit_name(study.kind).c_str(), c.transistor_count,
                  c.output_node.c_str());
      print_report(*res.testability, *res.collapsed);
    }
  }

  if (json) {
    w.end_array().end_object();
    std::printf("%s\n", w.str().c_str());
  }
  return 0;
}
