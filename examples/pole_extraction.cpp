// Pole/zero-style model extraction on the OP1 cell — the paper's second
// approach end to end, with the real linearized-circuit eigenanalysis in
// place of HSPICE.
//
//   $ ./example_pole_extraction
//
// Prints the fault-free OP1's AC magnitude response (Bode points), its
// extracted dominant poles, and then the extracted model for one faulty
// circuit, showing how the fault moves the poles and collapses the gain.
#include <cmath>
#include <cstdio>
#include <numbers>

#include "core/msbist.h"

int main() {
  using namespace msbist;
  using circuit::kGround;

  std::printf("== OP1 model extraction (paper approach 2, circuit 1) ==\n\n");

  // Build the open-loop cell with mid-rail inputs.
  circuit::Netlist n;
  const analog::Op1Nodes nodes = analog::build_op1(n);
  n.add<circuit::VoltageSource>(n.find_node(nodes.in_plus), kGround, 2.5);
  n.name_last("VINP");
  n.add<circuit::VoltageSource>(n.find_node(nodes.in_minus), kGround, 2.5);

  // AC magnitude response over five decades.
  const auto freqs = circuit::log_frequencies(1.0, 1e5, 11);
  const auto h = circuit::ac_transfer(n, "VINP", nodes.out, freqs);
  std::printf("open-loop AC response:\n    f [Hz]    |H| [dB]\n");
  for (std::size_t k = 0; k < freqs.size(); ++k) {
    std::printf("  %8.1f   %7.1f\n", freqs[k], 20.0 * std::log10(std::abs(h[k])));
  }

  // Natural frequencies of the linearized cell.
  auto poles = circuit::circuit_poles(n);
  std::sort(poles.begin(), poles.end(), [](const auto& a, const auto& b) {
    return std::abs(a.real()) < std::abs(b.real());
  });
  std::printf("\nextracted poles (rad/s):\n");
  for (std::size_t k = 0; k < poles.size() && k < 4; ++k) {
    std::printf("  p%zu = %.4g %+.4gj   (f = %.4g Hz)\n", k + 1, poles[k].real(),
                poles[k].imag(), std::abs(poles[k]) / (2.0 * std::numbers::pi));
  }

  // Fault-free vs faulty pole signatures through the tsrt wrapper.
  const tsrt::PoleSignature golden = tsrt::extract_pole_signature(std::nullopt);
  const auto fault = faults::FaultSpec::stuck_at(5, true);
  const tsrt::PoleSignature faulty = tsrt::extract_pole_signature(fault);

  std::printf("\nmodel comparison (%s):\n", fault.label.c_str());
  std::printf("  golden: dc gain %10.1f, dominant pole %.4g rad/s\n",
              golden.dc_gain, golden.poles.front().real());
  std::printf("  faulty: dc gain %10.1f, dominant pole %.4g rad/s\n",
              faulty.dc_gain,
              faulty.poles.empty() ? 0.0 : faulty.poles.front().real());
  const double det = tsrt::pole_detection_percent(golden, faulty);
  std::printf("  impulse-response detection instances: %.1f %%\n", det);
  std::printf("\nverdict: %s\n", tsrt::is_detected(det) ? "DETECTED" : "escaped");
  return tsrt::is_detected(det) ? 0 : 1;
}
