// Quickstart: fabricate one die and run the full on-chip BIST flow.
//
//   $ ./example_quickstart
//
// This is the 30-second tour of the library: a Device bundles the
// dual-slope ADC macro with its on-chip test macros (step generator, ramp
// generator, DC level sensor, signature compressor); run_bist() executes
// the paper's three test tiers and reports pass/fail per tier.
#include <cstdio>

#include "core/msbist.h"

int main() {
  using namespace msbist;

  // Die seed 1: a realistic device with process variation. Seed 0 gives
  // the no-variation "typical" die.
  core::Device die = core::Device::fabricate(1);
  const bist::BistReport report = die.run_bist();

  std::printf("== msbist quickstart: on-chip BIST of the dual-slope ADC ==\n\n");

  std::printf("analogue test (step inputs -> integrator fall times):\n");
  for (std::size_t i = 0; i < report.analog.step_levels.size(); ++i) {
    std::printf("  %.2f V -> %.2f ms (expected %.2f ms)\n",
                report.analog.step_levels[i],
                report.analog.fall_times_s[i] * 1e3,
                report.analog.expected_fall_times_s[i] * 1e3);
  }
  std::printf("  -> %s\n\n", report.analog.pass ? "PASS" : "FAIL");

  std::printf("ramp test (6 samples at 200 ms):  codes");
  for (std::uint32_t c : report.ramp.codes) std::printf(" %u", c);
  std::printf("\n  -> %s\n\n", report.ramp.pass ? "PASS" : "FAIL");

  std::printf("digital test: conversion %.2f ms (spec 5.6 ms), %.1f us/code\n",
              report.digital.max_conversion_time_s * 1e3,
              report.digital.fall_time_per_code_s * 1e6);
  std::printf("  -> %s\n\n", report.digital.pass ? "PASS" : "FAIL");

  std::printf("compressed test: signature 0x%04x (expected 0x%04x), "
              "analogue signature %u\n",
              report.compressed.digital_signature,
              report.compressed.expected_signature,
              report.compressed.analog_signature);
  std::printf("  -> %s\n\n", report.compressed.pass ? "PASS" : "FAIL");

  std::printf("device verdict: %s\n", report.pass ? "PASS" : "FAIL");
  return report.pass ? 0 : 1;
}
