// Unit tests for continuous-time state-space models.
#include "dsp/state_space.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "dsp/vec.h"

namespace msbist::dsp {
namespace {

// First-order lag H(s) = 1/(s + a): impulse response e^{-a t}.
StateSpace first_order(double a) {
  return StateSpace::from_transfer_function({1.0}, {1.0, a});
}

TEST(StateSpace, RejectsImproperTransferFunction) {
  EXPECT_THROW(StateSpace::from_transfer_function({1.0, 0.0, 0.0}, {1.0, 1.0}),
               std::invalid_argument);
}

TEST(StateSpace, RejectsMoreZerosThanPoles) {
  const std::vector<std::complex<double>> zeros{{-1.0, 0.0}, {-2.0, 0.0}};
  const std::vector<std::complex<double>> poles{{-3.0, 0.0}};
  EXPECT_THROW(StateSpace::from_zpk(zeros, poles, 1.0), std::invalid_argument);
}

TEST(StateSpace, FirstOrderImpulseIsExponential) {
  const double a = 100.0;
  const StateSpace sys = first_order(a);
  const double dt = 1e-4;
  const auto h = sys.impulse(dt, 200);
  for (std::size_t k = 0; k < h.size(); ++k) {
    const double expect = std::exp(-a * dt * static_cast<double>(k));
    EXPECT_NEAR(h[k], expect, 1e-9) << "k=" << k;
  }
}

TEST(StateSpace, FirstOrderStepSettlesToDcGain) {
  const StateSpace sys = first_order(50.0);
  const auto y = sys.step(1e-3, 400);
  EXPECT_NEAR(y.back(), sys.dc_gain(), 1e-9);
  EXPECT_NEAR(sys.dc_gain(), 1.0 / 50.0, 1e-12);
}

TEST(StateSpace, SecondOrderPolesRecovered) {
  // H(s) = 1 / (s^2 + 2 zeta wn s + wn^2), wn = 2, zeta = 0.25 -> complex poles.
  const double wn = 2.0, zeta = 0.25;
  const StateSpace sys =
      StateSpace::from_transfer_function({1.0}, {1.0, 2.0 * zeta * wn, wn * wn});
  auto p = sys.poles();
  ASSERT_EQ(p.size(), 2u);
  EXPECT_NEAR(p[0].real(), -zeta * wn, 1e-9);
  EXPECT_NEAR(std::abs(p[0].imag()), wn * std::sqrt(1 - zeta * zeta), 1e-9);
  EXPECT_TRUE(sys.is_stable());
}

TEST(StateSpace, UnstablePoleDetected) {
  const StateSpace sys = StateSpace::from_transfer_function({1.0}, {1.0, -1.0});
  EXPECT_FALSE(sys.is_stable());
}

TEST(StateSpace, ZpkRoundTrip) {
  // H(s) = 3 (s+1) / ((s+2)(s+5)); dc gain = 3*1/10 = 0.3.
  const StateSpace sys = StateSpace::from_zpk({{-1.0, 0.0}}, {{-2.0, 0.0}, {-5.0, 0.0}}, 3.0);
  EXPECT_NEAR(sys.dc_gain(), 0.3, 1e-12);
  const auto p = sys.poles();
  double prod = 1.0;
  for (const auto& e : p) prod *= e.real();
  EXPECT_NEAR(prod, 10.0, 1e-9);
}

TEST(StateSpace, ComplexZpkPair) {
  const std::complex<double> p1{-1.0, 2.0};
  const StateSpace sys = StateSpace::from_zpk({}, {p1, std::conj(p1)}, 5.0);
  EXPECT_NEAR(sys.dc_gain(), 5.0 / 5.0, 1e-12);  // |p|^2 = 5
  EXPECT_TRUE(sys.is_stable());
}

TEST(StateSpace, LsimSuperposition) {
  const StateSpace sys = first_order(30.0);
  const double dt = 1e-3;
  std::vector<double> u1(100), u2(100);
  for (std::size_t i = 0; i < 100; ++i) {
    u1[i] = std::sin(0.2 * static_cast<double>(i));
    u2[i] = (i % 7 == 0) ? 1.0 : -0.5;
  }
  const auto y1 = sys.lsim(u1, dt);
  const auto y2 = sys.lsim(u2, dt);
  const auto ysum = sys.lsim(add(u1, u2), dt);
  EXPECT_TRUE(approx_equal(ysum, add(y1, y2), 1e-10));
}

TEST(StateSpace, StepEqualsIntegralOfImpulse) {
  const StateSpace sys = first_order(40.0);
  const double dt = 1e-4;
  const std::size_t n = 300;
  const auto h = sys.impulse(dt, n);
  const auto s = sys.step(dt, n);
  // Cumulative sum of h * dt approximates the step response. ZOH-exactness
  // makes the match tight for this first-order system when compared at
  // midpoint-shifted indices; a loose tolerance suffices here.
  double acc = 0.0;
  for (std::size_t k = 1; k < n; ++k) {
    acc += h[k - 1] * dt;
    EXPECT_NEAR(s[k], acc, 5e-3) << "k=" << k;
  }
}

TEST(StateSpace, PureGainSystem) {
  const StateSpace sys = StateSpace::from_transfer_function({2.5}, {1.0});
  EXPECT_EQ(sys.order(), 0u);
  EXPECT_NEAR(sys.dc_gain(), 2.5, 1e-15);
  const auto y = sys.lsim({1.0, 2.0, 3.0}, 0.1);
  EXPECT_NEAR(y[2], 7.5, 1e-12);
}

TEST(StateSpace, IntegratorHandlesSingularA) {
  // H(s) = 1/s: the ZOH discretization must work despite det(A) == 0.
  const StateSpace sys = StateSpace::from_transfer_function({1.0}, {1.0, 0.0});
  const double dt = 0.01;
  const auto y = sys.step(dt, 101);
  // Integral of a unit step is t.
  EXPECT_NEAR(y[100], 1.0, 1e-9);
}

TEST(StateSpace, DcGainSingularAThrows) {
  const StateSpace sys = StateSpace::from_transfer_function({1.0}, {1.0, 0.0});
  EXPECT_THROW(sys.dc_gain(), std::runtime_error);
}

TEST(StateSpace, InvalidDtThrows) {
  const StateSpace sys = first_order(1.0);
  EXPECT_THROW(sys.impulse(0.0, 10), std::invalid_argument);
  EXPECT_THROW(sys.lsim({1.0}, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace msbist::dsp
