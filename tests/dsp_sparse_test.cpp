// Unit tests for the sparse CSR matrix and the symbolic/numeric-split
// sparse LU, plus the hardened unfactored-state error contract shared
// with the dense engine: solving or querying a never-factored (or
// failed) decomposition must be a hard error on both backends, never a
// silently empty answer.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "dsp/matrix.h"
#include "dsp/sparse.h"

namespace msbist::dsp {
namespace {

// MNA-shaped 4-unknown system: 3 node rows plus one voltage-source
// branch row with a structural zero on its diagonal — the layout that
// breaks naive no-pivot sparse LU.
SparseMatrix mna_example() {
  return SparseMatrix::from_triplets(
      4, 4,
      {{0, 0, 2.0}, {0, 1, -1.0}, {1, 0, -1.0}, {1, 1, 3.0}, {1, 2, -1.0},
       {2, 1, -1.0}, {2, 2, 1.5}, {0, 3, 1.0}, {3, 0, 1.0}});
}

TEST(SparseMatrix, FromTripletsSumsDuplicatesAndSortsRows) {
  SparseMatrix m = SparseMatrix::from_triplets(
      2, 3, {{0, 2, 1.0}, {0, 0, 5.0}, {0, 2, 0.5}, {1, 1, -2.0}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.at(0, 0), 5.0);
  EXPECT_EQ(m.at(0, 2), 1.5);
  EXPECT_EQ(m.at(1, 1), -2.0);
  EXPECT_EQ(m.at(0, 1), 0.0);  // absent coordinate reads as zero
  EXPECT_EQ(m.index_of(0, 1), SparseMatrix::npos);
  EXPECT_NE(m.find(0, 2), nullptr);
  EXPECT_EQ(*m.find(0, 2), 1.5);
  // Column indices sorted within each row.
  EXPECT_EQ(m.col_idx(), (std::vector<int>{0, 2, 1}));
  EXPECT_EQ(m.row_ptr(), (std::vector<int>{0, 2, 3}));
}

TEST(SparseMatrix, TripletOutOfRangeThrows) {
  EXPECT_THROW(SparseMatrix::from_triplets(2, 2, {{2, 0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(SparseMatrix::from_triplets(2, 2, {{0, -1, 1.0}}),
               std::invalid_argument);
}

TEST(SparseMatrix, DenseRoundTripAndMatvec) {
  Matrix d(3, 3);
  d(0, 0) = 4.0;
  d(0, 2) = -1.0;
  d(1, 1) = 2.0;
  d(2, 0) = 1.0;
  d(2, 2) = 3.0;
  const SparseMatrix s = SparseMatrix::from_dense(d);
  EXPECT_EQ(s.nnz(), 5u);
  const Matrix back = s.to_dense();
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(back(r, c), d(r, c));
  }
  const std::vector<double> v{1.0, -2.0, 0.5};
  const std::vector<double> dense_prod = d * v;
  const std::vector<double> sparse_prod = s * v;
  ASSERT_EQ(sparse_prod.size(), dense_prod.size());
  for (std::size_t i = 0; i < dense_prod.size(); ++i) {
    EXPECT_DOUBLE_EQ(sparse_prod[i], dense_prod[i]);
  }
}

TEST(SparseMatrix, PatternConstructionDeduplicates) {
  SparseMatrix m = SparseMatrix::from_pattern(
      2, 2, {{1, 1}, {0, 0}, {1, 1}, {0, 1}});
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.at(0, 0), 0.0);
  *m.find(1, 1) = 7.0;
  EXPECT_EQ(m.at(1, 1), 7.0);
  m.set_zero();
  EXPECT_EQ(m.at(1, 1), 0.0);
}

TEST(SparseLu, SolvesMnaSystemWithStructuralZeroDiagonal) {
  const SparseMatrix a = mna_example();
  SparseLu lu;
  lu.factor(a);
  ASSERT_TRUE(lu.factored());
  const std::vector<double> b{1.0, 0.0, -2.0, 0.5};
  const std::vector<double> x = lu.solve(b);
  const std::vector<double> residual = a * x;
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(residual[i], b[i], 1e-12);
  }
  // Cross-check against the dense engine.
  const std::vector<double> xd = LuDecomposition(a.to_dense()).solve(b);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], xd[i], 1e-12);
  }
}

TEST(SparseLu, DeterminantMatchesDenseIncludingSign) {
  const SparseMatrix a = mna_example();
  SparseLu lu;
  lu.factor(a);
  const double dd = LuDecomposition(a.to_dense()).determinant();
  EXPECT_NEAR(lu.determinant(), dd, 1e-12 * std::abs(dd));
}

TEST(SparseLu, RefactorReproducesFactorBitwise) {
  SparseMatrix a = mna_example();
  SparseLu lu;
  lu.factor(a);
  // Perturb the values (same pattern), refactor, and compare with a
  // from-scratch factorization of the same matrix: the replayed update
  // schedule preserves accumulation order, so solutions must be
  // bit-identical.
  for (std::size_t p = 0; p < a.nnz(); ++p) a.values()[p] *= 1.25;
  lu.refactor(a);
  EXPECT_EQ(lu.stats().analyses, 1u);
  EXPECT_EQ(lu.stats().factors, 1u);
  EXPECT_EQ(lu.stats().refactors, 1u);
  EXPECT_EQ(lu.stats().pivot_fallbacks, 0u);

  SparseLu fresh;
  fresh.factor(a);
  const std::vector<double> b{0.25, -1.0, 2.0, 1.0};
  const std::vector<double> x_re = lu.solve(b);
  const std::vector<double> x_fresh = fresh.solve(b);
  ASSERT_EQ(x_re.size(), x_fresh.size());
  for (std::size_t i = 0; i < x_re.size(); ++i) {
    EXPECT_EQ(x_re[i], x_fresh[i]);
  }
}

TEST(SparseLu, RefactorEscalatesOnPatternChange) {
  SparseLu lu;
  lu.factor(mna_example());
  const SparseMatrix other = SparseMatrix::from_triplets(
      2, 2, {{0, 0, 2.0}, {1, 1, 3.0}});
  lu.refactor(other);  // different pattern -> full re-analysis + factor
  EXPECT_EQ(lu.stats().analyses, 2u);
  EXPECT_EQ(lu.stats().factors, 2u);
  EXPECT_EQ(lu.stats().refactors, 0u);
  const std::vector<double> x = lu.solve({4.0, 9.0});
  EXPECT_DOUBLE_EQ(x[0], 2.0);
  EXPECT_DOUBLE_EQ(x[1], 3.0);
}

TEST(SparseLu, RefactorPivotDegenerationFallsBackToFreshPivoting) {
  // factor() on [[2,1],[1,2]] pivots on row 0 for the first column;
  // [[0,1],[1,2]] zeroes that pivot slot while staying nonsingular, so
  // refactor must escalate to a fresh pivot search and still solve.
  SparseMatrix a = SparseMatrix::from_triplets(
      2, 2, {{0, 0, 2.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 2.0}});
  SparseLu lu;
  lu.factor(a);
  *a.find(0, 0) = 0.0;
  lu.refactor(a);
  EXPECT_EQ(lu.stats().pivot_fallbacks, 1u);
  ASSERT_TRUE(lu.factored());
  const std::vector<double> x = lu.solve({1.0, 0.0});
  // [[0,1],[1,2]] x = [1,0] -> x = [-2, 1]
  EXPECT_NEAR(x[0], -2.0, 1e-14);
  EXPECT_NEAR(x[1], 1.0, 1e-14);
}

TEST(SparseLu, SingularMatrixThrowsRuntimeErrorAndStaysUnfactored) {
  const SparseMatrix a = SparseMatrix::from_triplets(
      2, 2, {{0, 0, 1.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 1.0}});
  SparseLu lu;
  EXPECT_THROW(lu.factor(a), std::runtime_error);
  EXPECT_FALSE(lu.factored());
  EXPECT_THROW(lu.solve({1.0, 2.0}), std::logic_error);
}

TEST(SparseLu, UnfactoredUseIsHardError) {
  const SparseLu lu;
  std::vector<double> x;
  EXPECT_THROW(lu.solve({}), std::logic_error);
  EXPECT_THROW(lu.solve_into({}, x), std::logic_error);
  EXPECT_THROW(lu.determinant(), std::logic_error);
}

// The dense engine shares the hardened contract: before this fix a
// never-factored LuDecomposition "solved" an empty rhs to an empty
// vector and reported determinant ±1.
TEST(DenseLu, UnfactoredUseIsHardError) {
  const LuDecomposition lu;
  std::vector<double> x;
  EXPECT_THROW(lu.solve({}), std::logic_error);
  EXPECT_THROW(lu.solve_into({}, x), std::logic_error);
  EXPECT_THROW(lu.determinant(), std::logic_error);
}

TEST(DenseLu, FailedFactorLeavesHardErrorState) {
  Matrix singular(2, 2);
  singular(0, 0) = 1.0;
  singular(0, 1) = 2.0;
  singular(1, 0) = 2.0;
  singular(1, 1) = 4.0;
  LuDecomposition lu;
  EXPECT_THROW(lu.factor(singular), std::runtime_error);
  EXPECT_FALSE(lu.factored());
  EXPECT_THROW(lu.solve({1.0, 1.0}), std::logic_error);
  EXPECT_THROW(lu.determinant(), std::logic_error);
}

TEST(SparseLu, MinimumDegreeOrderingBoundsArrowheadFill) {
  // Arrowhead matrix: dense first row/column plus the diagonal. Natural
  // order fills in completely (~n^2 entries); eliminating the hub last
  // keeps L+U linear in n.
  const int n = 24;
  std::vector<std::tuple<int, int, double>> t;
  for (int i = 0; i < n; ++i) {
    t.push_back({i, i, 4.0});
    if (i > 0) {
      t.push_back({0, i, 1.0});
      t.push_back({i, 0, 1.0});
    }
  }
  const SparseMatrix a = SparseMatrix::from_triplets(n, n, t);
  SparseLu lu;
  lu.factor(a);
  EXPECT_LE(lu.lu_nnz(), static_cast<std::size_t>(4 * n));
  // Solution sanity: compare to dense.
  std::vector<double> b(n);
  for (int i = 0; i < n; ++i) b[i] = 0.1 * i - 1.0;
  const std::vector<double> xs = lu.solve(b);
  const std::vector<double> xd = LuDecomposition(a.to_dense()).solve(b);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-12);
}

TEST(BatchSparseLu, LockstepMatchesScalarPerVariant) {
  const SparseMatrix base = mna_example();
  SparseLu scalar;
  scalar.factor(base);

  const std::size_t kVariants = 5;
  std::vector<double> a_soa(base.nnz() * kVariants);
  for (std::size_t p = 0; p < base.nnz(); ++p) {
    for (std::size_t v = 0; v < kVariants; ++v) {
      a_soa[p * kVariants + v] =
          base.values()[p] * (1.0 + 0.03 * static_cast<double>(v));
    }
  }
  BatchSparseLu batch;
  batch.bind(scalar, kVariants);
  batch.refactor_batch(a_soa.data());
  EXPECT_EQ(batch.fallback_count(), 0u);

  const std::vector<double> b{1.0, -0.5, 0.25, 2.0};
  std::vector<double> x_soa(base.nnz(), 0.0);
  x_soa.assign(4 * kVariants, 0.0);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t v = 0; v < kVariants; ++v) {
      x_soa[r * kVariants + v] = b[r];
    }
  }
  batch.solve_batch(x_soa.data());

  for (std::size_t v = 0; v < kVariants; ++v) {
    SparseMatrix av = base;
    for (std::size_t p = 0; p < base.nnz(); ++p) {
      av.values()[p] = a_soa[p * kVariants + v];
    }
    SparseLu ref;
    ref.factor(av);
    const std::vector<double> xv = ref.solve(b);
    for (std::size_t r = 0; r < 4; ++r) {
      const double got = x_soa[r * kVariants + v];
      EXPECT_NEAR(got, xv[r], 1e-12 * (1.0 + std::abs(xv[r])))
          << "variant " << v << " row " << r;
    }
  }
}

TEST(BatchSparseLu, DegenerateVariantFallsBackPrivately) {
  SparseMatrix a = SparseMatrix::from_triplets(
      2, 2, {{0, 0, 2.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 2.0}});
  SparseLu scalar;
  scalar.factor(a);

  const std::size_t kVariants = 3;
  std::vector<double> a_soa(a.nnz() * kVariants);
  for (std::size_t p = 0; p < a.nnz(); ++p) {
    for (std::size_t v = 0; v < kVariants; ++v) {
      a_soa[p * kVariants + v] = a.values()[p];
    }
  }
  // Variant 1 zeroes the shared first pivot (slot (0,0)) but stays
  // nonsingular: [[0,1],[1,2]].
  a_soa[a.index_of(0, 0) * kVariants + 1] = 0.0;

  BatchSparseLu batch;
  batch.bind(scalar, kVariants);
  batch.refactor_batch(a_soa.data());
  EXPECT_EQ(batch.fallback_count(), 1u);

  std::vector<double> x_soa(2 * kVariants);
  for (std::size_t v = 0; v < kVariants; ++v) {
    x_soa[0 * kVariants + v] = 1.0;
    x_soa[1 * kVariants + v] = 0.0;
  }
  batch.solve_batch(x_soa.data());
  // Variants 0 and 2: [[2,1],[1,2]] x = [1,0] -> [2/3, -1/3].
  EXPECT_NEAR(x_soa[0 * kVariants + 0], 2.0 / 3.0, 1e-14);
  EXPECT_NEAR(x_soa[1 * kVariants + 0], -1.0 / 3.0, 1e-14);
  EXPECT_NEAR(x_soa[0 * kVariants + 2], 2.0 / 3.0, 1e-14);
  EXPECT_NEAR(x_soa[1 * kVariants + 2], -1.0 / 3.0, 1e-14);
  // Variant 1: [[0,1],[1,2]] x = [1,0] -> [-2, 1].
  EXPECT_NEAR(x_soa[0 * kVariants + 1], -2.0, 1e-14);
  EXPECT_NEAR(x_soa[1 * kVariants + 1], 1.0, 1e-14);
}

TEST(BatchSparseLu, MisuseIsHardError) {
  SparseLu unfactored;
  BatchSparseLu batch;
  EXPECT_THROW(batch.bind(unfactored, 4), std::logic_error);

  SparseLu scalar;
  scalar.factor(mna_example());
  batch.bind(scalar, 2);
  std::vector<double> x(4 * 2, 1.0);
  // solve before any refactor_batch: no numeric state yet.
  EXPECT_THROW(batch.solve_batch(x.data()), std::logic_error);
}

}  // namespace
}  // namespace msbist::dsp
