// Robustness corpus: pathological netlists driven through the
// convergence-rescue ladder (circuit/rescue.h) and the typed failure
// taxonomy (core/error.h), plus the graceful-degradation contracts of the
// layers above (campaigns, BIST tiers).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "adc/dual_slope.h"
#include "analysis/diagnostic.h"
#include "bist/controller.h"
#include "circuit/dc.h"
#include "circuit/elements.h"
#include "circuit/mos.h"
#include "circuit/rescue.h"
#include "circuit/solver.h"
#include "circuit/transient.h"
#include "circuit/workspace.h"
#include "core/error.h"
#include "core/outcome.h"
#include "faults/campaign.h"
#include "faults/universe.h"

namespace msbist {
namespace {

using circuit::kGround;
using circuit::Netlist;
using circuit::NodeId;

/// Newton oscillator: when active, injects a current whose *sign* flips
/// with the iterate (target solution jumps between +-i/g_anchor), so no
/// fixed point exists and the iteration orbits forever. Activity can be
/// gated on the transient step size (dt_threshold) to exercise the
/// timestep-halving rung, or forced for DC via set_dc_active. The stamp
/// footprint (one conductance, one RHS write) is iterate-independent as
/// the Element contract requires; only the written values vary.
class OscillatorElement final : public circuit::Element {
 public:
  OscillatorElement(NodeId node, double dt_threshold, bool dc_active)
      : node_(node), dt_threshold_(dt_threshold), dc_active_(dc_active) {}

  void set_dc_active(bool active) { dc_active_ = active; }

  void stamp(circuit::Stamper& s, const circuit::StampContext& ctx) const override {
    s.conductance(node_, kGround, 1e-3);  // anchor: matrix stays regular
    // The t > 0 gate keeps the element quiescent during the consistent
    // initial-point solve (which runs at full dt but t = t_start).
    const bool active = ctx.mode == circuit::StampContext::Mode::kTransient
                            ? ctx.dt > dt_threshold_ && ctx.t > 0.0
                            : dc_active_;
    double i = 0.0;
    if (active) {
      const double v = circuit::Stamper::voltage(ctx, node_);
      i = v >= 0.0 ? 1.0 : -1.0;  // target flips sign with the iterate
    }
    s.current(node_, kGround, i);
  }
  std::vector<NodeId> terminals() const override { return {node_, kGround}; }
  std::vector<std::pair<int, int>> dc_paths() const override { return {{0, 1}}; }
  bool nonlinear() const override { return true; }

 private:
  NodeId node_;
  double dt_threshold_;
  bool dc_active_;
};

/// Poison element: once the node moves off zero, its injected current
/// overflows to Inf, so the next Newton iterate goes non-finite. Probes
/// the divergence guard (abort on first poisoned update, not after the
/// full iteration budget).
class PoisonElement final : public circuit::Element {
 public:
  explicit PoisonElement(NodeId node) : node_(node) {}

  void stamp(circuit::Stamper& s, const circuit::StampContext& ctx) const override {
    s.conductance(node_, kGround, 1e-3);
    const double v = circuit::Stamper::voltage(ctx, node_);
    s.current(node_, kGround, v * 1e308 * 1e10);  // Inf for any v != 0
  }
  std::vector<NodeId> terminals() const override { return {node_, kGround}; }
  std::vector<std::pair<int, int>> dc_paths() const override { return {{0, 1}}; }
  bool nonlinear() const override { return true; }

 private:
  NodeId node_;
};

/// A comparator wired in inverting feedback with no consistent DC state:
/// switch closed pulls `out` below threshold (so it must open), open lets
/// `out` rise above it (so it must close). Deterministically
/// non-convergent at the caller's gmin.
void build_bistable(Netlist& n) {
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  n.add<circuit::VoltageSource>(in, kGround, 5.0);
  n.add<circuit::Resistor>(in, out, 1e3);
  n.add<circuit::VoltageSwitch>(out, kGround, out, kGround,
                                /*threshold=*/2.5, /*r_on=*/1.0,
                                /*r_off=*/1e9);
}

circuit::DcOptions fast_dc_options() {
  circuit::DcOptions opts;
  opts.newton.max_iterations = 60;
  opts.source_steps = 4;
  opts.rescue.max_gmin_steps = 2;
  return opts;
}

// ---------------------------------------------------------------------------
// Typed taxonomy at the solver boundary
// ---------------------------------------------------------------------------

TEST(FailureTaxonomy, BistableDcExhaustsLadderWithNonConvergent) {
  Netlist n;
  build_bistable(n);
  circuit::DcOptions opts = fast_dc_options();
  try {
    circuit::dc_operating_point(n, opts);
    FAIL() << "expected NonConvergentError";
  } catch (const core::NonConvergentError& e) {
    EXPECT_EQ(e.code(), core::ErrorCode::kNonConvergent);
    EXPECT_EQ(e.failure().analysis, "dc_operating_point");
    EXPECT_NE(e.failure().detail.find("rescue ladder exhausted"),
              std::string::npos);
    EXPECT_GT(e.failure().iterations, 0);
    EXPECT_FALSE(e.failure().worst_node.empty());
  }
}

TEST(FailureTaxonomy, ConflictingSourcesAreSingularAfterFullLadder) {
  // Two contradicting voltage sources in parallel: the branch rows are
  // linearly dependent at any gmin (the leak only lands on node
  // diagonals) and at any source scale — genuinely unrescuable.
  Netlist n;
  const NodeId a = n.node("a");
  n.add<circuit::VoltageSource>(a, kGround, 5.0);
  n.add<circuit::VoltageSource>(a, kGround, 3.0);
  circuit::DcOptions opts = fast_dc_options();
  opts.erc = false;  // the ERC would reject this before the solver
  try {
    circuit::dc_operating_point(n, opts);
    FAIL() << "expected SingularMatrixError";
  } catch (const core::SingularMatrixError& e) {
    EXPECT_EQ(e.code(), core::ErrorCode::kSingularMatrix);
    EXPECT_NE(e.failure().detail.find("rescue ladder exhausted"),
              std::string::npos);
  }
}

TEST(FailureTaxonomy, FloatingMosGateRejectedByErcBeforeSolving) {
  Netlist n;
  const NodeId vdd = n.node("vdd");
  const NodeId out = n.node("out");
  const NodeId gate = n.node("gate");
  n.add<circuit::VoltageSource>(vdd, kGround, 5.0);
  n.add<circuit::Resistor>(vdd, out, 10e3);
  n.add<circuit::Mosfet>(circuit::MosType::kNmos, out, gate, kGround,
                         circuit::MosParams::nmos_5um());
  n.add<circuit::Capacitor>(gate, kGround, 1e-12);  // gate floats at DC
  EXPECT_THROW(circuit::dc_operating_point(n), analysis::ErcError);
}

TEST(FailureTaxonomy, DivergenceGuardAbortsLongBeforeIterationBudget) {
  Netlist n;
  const NodeId v = n.node("v");
  n.add<circuit::CurrentSource>(kGround, v, 1e-3);  // push the node off 0
  n.add<PoisonElement>(v);
  circuit::DcOptions opts;
  opts.newton.max_iterations = 500;
  opts.rescue.enable = false;  // probe the raw guard, not the ladder
  try {
    circuit::dc_operating_point(n, opts);
    FAIL() << "expected NumericOverflowError";
  } catch (const core::NumericOverflowError& e) {
    EXPECT_EQ(e.code(), core::ErrorCode::kNumericOverflow);
    // First poisoned update aborts the attempt: a handful of iterations,
    // never the 500-iteration budget.
    EXPECT_LE(e.failure().iterations, 5);
  }
}

TEST(FailureTaxonomy, FailureJsonCarriesStructuredFields) {
  Netlist n;
  build_bistable(n);
  circuit::DcOptions opts = fast_dc_options();
  try {
    circuit::dc_operating_point(n, opts);
    FAIL() << "expected SolverError";
  } catch (const core::SolverError& e) {
    core::JsonWriter w;
    e.failure().to_json(w);
    const std::string json = w.str();
    EXPECT_NE(json.find("\"code\":\"non_convergent\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"analysis\":\"dc_operating_point\""),
              std::string::npos);
    EXPECT_NE(json.find("\"worst_node\""), std::string::npos);
    EXPECT_NE(json.find("\"iterations\""), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Rescue ladder mechanics
// ---------------------------------------------------------------------------

TEST(RescueLadder, DtHalvingRescuesStiffStep) {
  // Oscillates at the full dt = 1 ms, behaves linearly below 0.75 ms: the
  // direct attempt and the gmin rung must fail, the first halving (dt/2 =
  // 0.5 ms) must succeed, on every step.
  Netlist n;
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  n.add<circuit::VoltageSource>(in, kGround, 5.0);
  n.add<circuit::Resistor>(in, out, 1e3);
  n.add<OscillatorElement>(out, /*dt_threshold=*/0.75e-3, /*dc_active=*/false);

  circuit::TransientOptions opts;
  opts.dt = 1e-3;
  opts.t_stop = 3e-3;
  opts.newton.max_iterations = 60;
  opts.rescue.max_gmin_steps = 2;
  const circuit::TransientResult res = circuit::transient(n, opts);

  ASSERT_EQ(res.samples(), 4u);
  // Anchor 1e-3 S vs 1 kohm: a clean divider once the oscillator is
  // quiescent.
  EXPECT_NEAR(res.voltage("out").back(), 2.5, 1e-6);
  const circuit::RescueTrace& trace = res.rescue();
  EXPECT_TRUE(trace.used());
  EXPECT_EQ(trace.rescued_points, 3u);  // every step needed the ladder
  // Per step: direct fail, gmin fail, dt-halving success.
  ASSERT_EQ(trace.attempts.size(), 9u);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(trace.attempts[3 * k].stage,
              circuit::RescueAttempt::Stage::kDirect);
    EXPECT_FALSE(trace.attempts[3 * k].succeeded);
    EXPECT_EQ(trace.attempts[3 * k + 1].stage,
              circuit::RescueAttempt::Stage::kGminStep);
    EXPECT_FALSE(trace.attempts[3 * k + 1].succeeded);
    EXPECT_EQ(trace.attempts[3 * k + 2].stage,
              circuit::RescueAttempt::Stage::kDtHalving);
    EXPECT_TRUE(trace.attempts[3 * k + 2].succeeded);
    EXPECT_DOUBLE_EQ(trace.attempts[3 * k + 2].parameter, 0.5e-3);
  }
}

TEST(RescueLadder, DtHalvingKeepsCapacitorStateConsistent) {
  // Same stiff step with a real storage element riding along: the halved
  // substeps advance the capacitor themselves (checkpoint/rollback +
  // per-substep accepts), so the waveform must still be a clean monotone
  // RC charge toward the divider voltage.
  Netlist n;
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  n.add<circuit::VoltageSource>(in, kGround, 5.0);
  n.add<circuit::Resistor>(in, out, 1e3);
  n.add<circuit::Capacitor>(out, kGround, 1e-6);
  n.add<OscillatorElement>(out, /*dt_threshold=*/0.75e-3, /*dc_active=*/false);

  circuit::TransientOptions opts;
  opts.dt = 1e-3;
  opts.t_stop = 10e-3;
  opts.use_initial_conditions = true;  // start from 0 V, watch the charge
  opts.newton.max_iterations = 60;
  opts.rescue.max_gmin_steps = 2;
  const circuit::TransientResult res = circuit::transient(n, opts);

  const std::vector<double>& v = res.voltage("out");
  for (std::size_t k = 1; k < v.size(); ++k) {
    EXPECT_GT(v[k], v[k - 1] - 1e-12) << "k=" << k;
    EXPECT_LT(v[k], 2.5 + 1e-6);
  }
  EXPECT_GT(v.back(), 2.0);  // several RC constants in: close to final
  EXPECT_EQ(res.rescue().rescued_points, 10u);
}

TEST(RescueLadder, TransientExhaustionReportsFailingTime) {
  Netlist n;
  const NodeId out = n.node("out");
  n.add<circuit::CurrentSource>(kGround, out, 1e-6);
  n.add<OscillatorElement>(out, /*dt_threshold=*/0.0, /*dc_active=*/false);

  circuit::TransientOptions opts;
  opts.dt = 1e-3;
  opts.t_stop = 5e-3;
  opts.newton.max_iterations = 50;
  opts.rescue.max_gmin_steps = 2;
  opts.rescue.max_dt_halvings = 2;
  try {
    circuit::transient(n, opts);
    FAIL() << "expected NonConvergentError";
  } catch (const core::NonConvergentError& e) {
    EXPECT_EQ(e.failure().analysis, "transient");
    ASSERT_TRUE(e.failure().has_time);
    EXPECT_DOUBLE_EQ(e.failure().time_s, 1e-3);  // dies on the first step
    EXPECT_NE(e.failure().detail.find("rescue ladder exhausted"),
              std::string::npos);
  }
}

TEST(RescueLadder, CleanNetlistsAreBitIdenticalWithLadderOnOrOff) {
  // A netlist that never fails must never enter the ladder, so enabling
  // it cannot perturb a single bit of the waveform.
  const auto run = [](bool enable) {
    Netlist n;
    const NodeId in = n.node("in");
    const NodeId out = n.node("out");
    n.add<circuit::VoltageSource>(in, kGround, 5.0);
    n.add<circuit::Resistor>(in, out, 10e3);
    n.add<circuit::Capacitor>(out, kGround, 100e-9);
    circuit::TransientOptions opts;
    opts.dt = 1e-5;
    opts.t_stop = 2e-3;
    opts.rescue.enable = enable;
    return circuit::transient(n, opts);
  };
  const circuit::TransientResult with = run(true);
  const circuit::TransientResult without = run(false);
  EXPECT_FALSE(with.rescue().used());
  ASSERT_EQ(with.samples(), without.samples());
  const std::vector<double>& a = with.voltage("out");
  const std::vector<double>& b = without.voltage("out");
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k], b[k]) << "sample " << k;  // exact, not NEAR
  }
}

TEST(RescueLadder, MosSweepBitIdenticalWithLadderOnOrOff) {
  const auto run = [](bool enable) {
    Netlist n;
    const NodeId vdd = n.node("vdd");
    const NodeId out = n.node("out");
    const NodeId gate = n.node("g");
    n.add<circuit::VoltageSource>(vdd, kGround, 5.0);
    auto* vin = n.add<circuit::VoltageSource>(gate, kGround, 0.0);
    n.add<circuit::Resistor>(vdd, out, 20e3);
    n.add<circuit::Mosfet>(circuit::MosType::kNmos, out, gate, kGround,
                           circuit::MosParams::nmos_5um());
    std::vector<double> sweep;
    for (int i = 0; i <= 25; ++i) sweep.push_back(5.0 * i / 25.0);
    circuit::DcOptions opts;
    opts.rescue.enable = enable;
    return circuit::dc_sweep(
        n, sweep, [&](Netlist&, double v) { vin->set_dc(v); }, "out", opts);
  };
  const circuit::DcSweepResult with = run(true);
  const circuit::DcSweepResult without = run(false);
  ASSERT_TRUE(with.complete());
  ASSERT_EQ(with.values.size(), without.values.size());
  for (std::size_t k = 0; k < with.values.size(); ++k) {
    EXPECT_EQ(with.values[k], without.values[k]) << "point " << k;
  }
}

// ---------------------------------------------------------------------------
// Workspace fingerprint regression (gmin participates in cache identity)
// ---------------------------------------------------------------------------

TEST(Workspace, GminChangeInvalidatesCachedStampsAndLu) {
  // One current source against nothing but the gmin leak: v = I / gmin.
  // If gmin were missing from the workspace fingerprint, the second call
  // would reuse the stale factorization and return the first voltage.
  Netlist n;
  const NodeId v = n.node("v");
  n.add<circuit::CurrentSource>(kGround, v, 1e-6);
  const std::size_t unknowns = n.assign_unknowns();
  circuit::StampContext ctx;
  circuit::SolverWorkspace ws;

  circuit::NewtonOptions newton;
  newton.gmin = 1e-6;
  std::vector<double> x1 = circuit::solve_mna(n, ctx, unknowns, {}, newton, &ws);
  EXPECT_NEAR(x1[0], 1.0, 1e-9);

  newton.gmin = 1e-3;
  std::vector<double> x2 = circuit::solve_mna(n, ctx, unknowns, {}, newton, &ws);
  EXPECT_NEAR(x2[0], 1e-3, 1e-12);
  EXPECT_EQ(ws.stats().binds, 2u) << "gmin change must rebind the workspace";
}

// ---------------------------------------------------------------------------
// dc_sweep: failed points recorded, never dropped
// ---------------------------------------------------------------------------

TEST(DcSweep, FailedPointRecordedAndSweepContinues) {
  Netlist n;
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  auto* vin = n.add<circuit::VoltageSource>(in, kGround, 0.0);
  n.add<circuit::Resistor>(in, out, 1e3);
  auto* osc =
      n.add<OscillatorElement>(out, /*dt_threshold=*/0.0, /*dc_active=*/false);

  const std::vector<double> values{0.0, 1.0, 2.0, 3.0, 4.0};
  circuit::DcOptions opts = fast_dc_options();
  const circuit::DcSweepResult res = circuit::dc_sweep(
      n, values,
      [&](Netlist&, double v) {
        vin->set_dc(v);
        osc->set_dc_active(v == 2.0);  // exactly one unsolvable point
      },
      "out", opts);

  ASSERT_EQ(res.values.size(), 5u);
  ASSERT_EQ(res.failures.size(), 1u);
  EXPECT_FALSE(res.complete());
  EXPECT_FALSE(res.outcome().pass);
  EXPECT_TRUE(std::isnan(res.values[2]));
  EXPECT_EQ(res.failures[0].index, 2u);
  EXPECT_DOUBLE_EQ(res.failures[0].value, 2.0);
  EXPECT_EQ(res.failures[0].failure.code, core::ErrorCode::kNonConvergent);
  EXPECT_TRUE(res.failures[0].failure.has_sweep_value);
  EXPECT_DOUBLE_EQ(res.failures[0].failure.sweep_value, 2.0);
  // The surviving points are the plain dividers (anchor 1e-3 S vs 1 kohm).
  for (std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                        std::size_t{4}}) {
    EXPECT_NEAR(res.values[k], values[k] / 2.0, 1e-6) << "point " << k;
  }
  // Serialized: NaN renders as null, failures carry the taxonomy record.
  const std::string json = core::to_json(res);
  EXPECT_NE(json.find("\"failures\""), std::string::npos);
  EXPECT_NE(json.find("null"), std::string::npos);
  EXPECT_NE(json.find("\"non_convergent\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// BIST: failures become failing verdicts with diagnostics
// ---------------------------------------------------------------------------

TEST(BistRobustness, UnknownTierFailsWithBadInputRecord) {
  adc::DualSlopeAdc adc(adc::DualSlopeAdcConfig::ideal());
  const bist::BistController ctrl = bist::BistController::typical();
  bist::BistReport report;
  const core::Outcome verdict =
      ctrl.run_tier(static_cast<bist::Tier>(99), adc, report);
  EXPECT_FALSE(verdict.pass);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].code, core::ErrorCode::kBadInput);
  const std::string json = core::to_json(report);
  EXPECT_NE(json.find("\"bad_input\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Campaign acceptance: 240 faults, >= 5 convergence killers, zero
// uncaught exceptions, parallel bit-identical to serial
// ---------------------------------------------------------------------------

TEST(CampaignRobustness, ConvergenceKillersClassifiedDetectedByFailure) {
  const std::vector<faults::FaultSpec> universe =
      faults::all_single_stuck(1, 120);
  ASSERT_EQ(universe.size(), 240u);

  // Faults on every 24th node model hard shorts that leave the macro with
  // no consistent operating point: the simulation itself fails, and that
  // failure *is* the detection.
  const auto is_killer = [](const faults::FaultSpec& f) {
    return f.node_a % 24 == 0;
  };
  std::size_t killer_count = 0;
  for (const auto& f : universe) killer_count += is_killer(f) ? 1 : 0;
  ASSERT_GE(killer_count, 5u);

  const faults::FaultTestFn probe = [&](const faults::FaultSpec& f) {
    if (is_killer(f)) {
      Netlist n;
      build_bistable(n);
      circuit::dc_operating_point(n, fast_dc_options());  // throws
    }
    faults::FaultResult r;
    r.fault = f;
    r.detected = true;
    r.score = static_cast<double>(f.node_a) + (f.stuck_high ? 0.5 : 0.0);
    r.detail = "delta above threshold";
    return r;
  };

  const faults::CampaignReport serial = faults::run_campaign(universe, probe);
  faults::CampaignOptions par_opts;
  par_opts.threads = 8;
  const faults::CampaignReport parallel =
      faults::run_campaign_parallel(universe, probe, par_opts);

  // Zero uncaught exceptions, full classification.
  EXPECT_EQ(serial.results.size(), 240u);
  EXPECT_EQ(serial.detected_count, 240u);
  EXPECT_EQ(serial.detected_by_failure_count, killer_count);
  EXPECT_EQ(serial.errored_count, 0u);
  EXPECT_EQ(serial.timed_out_count, 0u);
  EXPECT_TRUE(serial.outcome().pass) << serial.outcome().detail;

  // The parallel engine must agree byte-for-byte on every outcome field.
  EXPECT_EQ(serial.canonical_outcomes(), parallel.canonical_outcomes());
  EXPECT_EQ(parallel.detected_by_failure_count, killer_count);

  // Spot-check one killer's structured record.
  const faults::FaultResult* killer = nullptr;
  for (const auto& r : serial.results) {
    if (r.detected_by_failure) {
      killer = &r;
      break;
    }
  }
  ASSERT_NE(killer, nullptr);
  EXPECT_EQ(killer->classify(), faults::FaultOutcome::kDetectedByFailure);
  ASSERT_TRUE(killer->has_failure);
  EXPECT_EQ(killer->failure.code, core::ErrorCode::kNonConvergent);
  const std::string json = core::to_json(*killer);
  EXPECT_NE(json.find("\"outcome\":\"detected_by_failure\""),
            std::string::npos);
  EXPECT_NE(json.find("\"code\":\"non_convergent\""), std::string::npos);
}

}  // namespace
}  // namespace msbist
