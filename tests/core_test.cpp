// Unit tests for the Device/Batch fabrication model, report tables and
// the thread pool behind the parallel campaign engine.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "core/device.h"
#include "core/report.h"
#include "core/thread_pool.h"

namespace msbist::core {
namespace {

TEST(DeviceTest, TypicalDieMatchesPaperCharacterization) {
  Device d = Device::fabricate(0);
  const adc::AdcMetrics m = d.characterize();
  // Paper spec table: offset < 0.2 LSB (allowing measurement slack),
  // gain within +/-0.5 LSB, INL max ~1.3, DNL max ~1.2.
  EXPECT_LT(std::abs(m.offset_lsb), 0.25);
  EXPECT_LT(std::abs(m.gain_error_lsb), 0.55);
  EXPECT_NEAR(m.max_abs_dnl, 1.2, 0.25);
  EXPECT_NEAR(m.max_abs_inl, 1.3, 0.25);
}

TEST(DeviceTest, SameSeedSameDie) {
  Device a = Device::fabricate(7);
  Device b = Device::fabricate(7);
  const auto ra = a.run_bist();
  const auto rb = b.run_bist();
  EXPECT_EQ(ra.pass, rb.pass);
  EXPECT_EQ(ra.compressed.digital_signature, rb.compressed.digital_signature);
  EXPECT_EQ(ra.analog.fall_times_s, rb.analog.fall_times_s);
}

TEST(DeviceTest, DifferentSeedsDiffer) {
  Device a = Device::fabricate(1);
  Device b = Device::fabricate(2);
  // Different dies measure at least slightly different fall times.
  const auto ra = a.run_bist();
  const auto rb = b.run_bist();
  EXPECT_NE(ra.analog.fall_times_s, rb.analog.fall_times_s);
}

TEST(BatchTest, PaperBatchAllPass) {
  // "A batch of 10 devices were fabricated... All devices passed the
  // analogue, digital and compressed tests."
  Batch batch = Batch::paper_batch();
  ASSERT_EQ(batch.size(), 10u);
  const auto res = batch.run_production_test();
  EXPECT_TRUE(res.all_passed()) << res.passed << "/10 passed";
}

TEST(BatchTest, FaultyDieFailsInBatch) {
  adc::DualSlopeAdcConfig bad = adc::DualSlopeAdcConfig::characterized();
  bad.latch_faults.stuck_high_mask = 0x20;
  Batch batch(3, 42, bad);
  const auto res = batch.run_production_test();
  EXPECT_EQ(res.passed, 0u);
}

TEST(ReportTable, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", Table::num(1.5, 2)});
  t.add_row({"b", "x"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
}

TEST(ReportTable, Validation) {
  EXPECT_THROW(Table({}), std::invalid_argument);
  Table t({"a"});
  EXPECT_THROW(t.add_row({"x", "y"}), std::invalid_argument);
}

TEST(ReportTable, NumPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
}

TEST(ThreadPool, RunsEverySubmittedJob) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ReusableAfterWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPool, ZeroThreadsThrows) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPool, DefaultThreadCountAtLeastOne) {
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

TEST(ThreadPool, DestructorDrainsPendingJobs) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor joins after draining the queue
  EXPECT_EQ(count.load(), 20);
}

}  // namespace
}  // namespace msbist::core
