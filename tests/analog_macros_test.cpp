// Unit tests for the behavioural analogue macros (op-amp, comparator,
// SC integrator, references) and the transistor-level OP1 cell.
#include <gtest/gtest.h>

#include <cmath>

#include "analog/comparator.h"
#include "analog/opamp.h"
#include "analog/references.h"
#include "circuit/mos.h"
#include "analog/sc_integrator.h"
#include "circuit/dc.h"
#include "circuit/elements.h"
#include "circuit/transient.h"

namespace msbist::analog {
namespace {

TEST(ProcessVariationTest, NominalIsIdentity) {
  ProcessVariation pv = ProcessVariation::nominal();
  EXPECT_DOUBLE_EQ(pv.vary(3.3, 0.5), 3.3);
  EXPECT_DOUBLE_EQ(pv.vary_abs(0.0, 0.5), 0.0);
  EXPECT_TRUE(pv.is_nominal());
}

TEST(ProcessVariationTest, DeterministicPerSeed) {
  ProcessVariation a(42), b(42), c(43);
  const double va = a.vary(1.0, 0.1);
  EXPECT_DOUBLE_EQ(va, b.vary(1.0, 0.1));
  EXPECT_NE(va, c.vary(1.0, 0.1));
}

TEST(ProcessVariationTest, TruncatedAtThreeSigma) {
  ProcessVariation pv(7);
  for (int i = 0; i < 2000; ++i) {
    const double v = pv.vary(1.0, 0.05);
    EXPECT_GE(v, 1.0 - 3 * 0.05);
    EXPECT_LE(v, 1.0 + 3 * 0.05);
  }
}

TEST(OpAmpModelTest, SettlesToClosedFormTarget) {
  OpAmpParams p;
  p.dc_gain = 1e4;
  p.gbw_hz = 1e6;
  p.slew_v_per_s = 1e9;  // effectively unlimited
  p.vout_min = -10.0;
  p.vout_max = 10.0;
  OpAmpModel amp(p);
  amp.reset(0.0);
  // 0.1 mV differential -> open-loop target 1.0 V.
  double v = 0.0;
  for (int i = 0; i < 200000; ++i) v = amp.step(1e-4, 0.0, 1e-7);
  EXPECT_NEAR(v, 1.0, 1e-3);
}

TEST(OpAmpModelTest, SlewLimitCaps) {
  OpAmpParams p;
  p.slew_v_per_s = 1e5;
  OpAmpModel amp(p);
  amp.reset(0.0);
  const double dt = 1e-6;
  double prev = amp.output();
  for (int i = 0; i < 50; ++i) {
    const double v = amp.step(5.0, 0.0, dt);
    EXPECT_LE(v - prev, p.slew_v_per_s * dt + 1e-12);
    prev = v;
  }
}

TEST(OpAmpModelTest, SaturatesAtRails) {
  OpAmpParams p;
  OpAmpModel amp(p);
  double v = 0.0;
  for (int i = 0; i < 100000; ++i) v = amp.step(1.0, 0.0, 1e-6);
  EXPECT_NEAR(v, p.vout_max, 1e-9);
  for (int i = 0; i < 100000; ++i) v = amp.step(0.0, 1.0, 1e-6);
  EXPECT_NEAR(v, p.vout_min, 1e-9);
}

TEST(OpAmpModelTest, OffsetShiftsBalance) {
  OpAmpParams p;
  p.offset_v = 1e-3;
  p.dc_gain = 1e3;
  OpAmpModel amp(p);
  amp.reset(2.0);
  // With v+ = v-, the target is gain*offset = 1 V.
  double v = 0.0;
  for (int i = 0; i < 200000; ++i) v = amp.step(2.0, 2.0, 1e-6);
  EXPECT_NEAR(v, 1.0, 1e-2);
}

TEST(OpAmpModelTest, InvalidParamsThrow) {
  OpAmpParams p;
  p.dc_gain = 0.0;
  EXPECT_THROW(OpAmpModel{p}, std::invalid_argument);
  OpAmpParams q;
  q.vout_max = q.vout_min;
  EXPECT_THROW(OpAmpModel{q}, std::invalid_argument);
}

TEST(ComparatorModelTest, BasicThreshold) {
  ComparatorParams p;
  p.delay_s = 0.0;
  p.hysteresis_v = 0.0;
  ComparatorModel cmp(p);
  EXPECT_DOUBLE_EQ(cmp.step(1.0, 0.5, 1e-6), p.v_high);
  EXPECT_DOUBLE_EQ(cmp.step(0.4, 0.5, 1e-6), p.v_low);
}

TEST(ComparatorModelTest, HysteresisHoldsState) {
  ComparatorParams p;
  p.delay_s = 0.0;
  p.hysteresis_v = 0.2;
  ComparatorModel cmp(p);
  cmp.reset(false);
  // Needs +0.1 V to switch high.
  cmp.step(0.05, 0.0, 1e-6);
  EXPECT_FALSE(cmp.output_high());
  cmp.step(0.15, 0.0, 1e-6);
  EXPECT_TRUE(cmp.output_high());
  // Small reversals inside the hysteresis band don't flip it back.
  cmp.step(-0.05, 0.0, 1e-6);
  EXPECT_TRUE(cmp.output_high());
  cmp.step(-0.15, 0.0, 1e-6);
  EXPECT_FALSE(cmp.output_high());
}

TEST(ComparatorModelTest, PropagationDelay) {
  ComparatorParams p;
  p.delay_s = 5e-6;
  p.hysteresis_v = 0.0;
  ComparatorModel cmp(p);
  cmp.reset(false);
  const double dt = 1e-6;
  int steps_to_flip = 0;
  for (int i = 0; i < 100 && !cmp.output_high(); ++i) {
    cmp.step(1.0, 0.0, dt);
    ++steps_to_flip;
  }
  // ~delay/dt steps (first step arms the timer).
  EXPECT_GE(steps_to_flip, 5);
  EXPECT_LE(steps_to_flip, 8);
}

TEST(ComparatorModelTest, GlitchShorterThanDelayIgnored) {
  ComparatorParams p;
  p.delay_s = 5e-6;
  ComparatorModel cmp(p);
  cmp.reset(false);
  cmp.step(1.0, 0.0, 1e-6);  // arm
  cmp.step(1.0, 0.0, 1e-6);
  cmp.step(-1.0, 0.0, 1e-6);  // input returns low before delay elapses
  for (int i = 0; i < 3; ++i) cmp.step(-1.0, 0.0, 1e-6);
  EXPECT_FALSE(cmp.output_high());
}

TEST(ScIntegratorModelTest, MatchesDesignEquation) {
  // Ideal model must track H(z) = z^-1/(k (1-z^-1)) driven step-wise.
  ScIntegratorParams p;
  p.cap_ratio = 6.8;
  p.vout_min = -100.0;
  p.vout_max = 100.0;
  ScIntegratorModel integ(p);
  double expect = 0.0;
  for (int n = 0; n < 40; ++n) {
    const double v = integ.update(1.0);
    expect += 1.0 / 6.8;
    EXPECT_NEAR(v, expect, 1e-12);
  }
}

TEST(ScIntegratorModelTest, InvertFlipsDirection) {
  ScIntegratorParams p;
  p.vout_min = -10.0;
  p.vout_max = 10.0;
  ScIntegratorModel integ(p);
  integ.update(1.0);
  const double up = integ.output();
  integ.update(1.0, /*invert=*/true);
  EXPECT_NEAR(integ.output(), up - 1.0 / p.cap_ratio, 1e-12);
}

TEST(ScIntegratorModelTest, LeakDecaysOutput) {
  ScIntegratorParams p;
  p.leak = 0.01;
  p.vout_min = -10.0;
  p.vout_max = 10.0;
  ScIntegratorModel integ(p);
  integ.reset(1.0);
  for (int i = 0; i < 10; ++i) integ.update(0.0);
  EXPECT_NEAR(integ.output(), std::pow(0.99, 10), 1e-12);
}

TEST(ScIntegratorModelTest, SaturationClamps) {
  ScIntegratorParams p;  // 0..5 V rails
  ScIntegratorModel integ(p);
  for (int i = 0; i < 100; ++i) integ.update(5.0);
  EXPECT_DOUBLE_EQ(integ.output(), p.vout_max);
}

TEST(ScIntegratorModelTest, NonlinearityBendsRamp) {
  ScIntegratorParams lin;
  lin.vout_max = 100.0;
  ScIntegratorParams nl = lin;
  nl.nonlinearity = 1e-2;
  ScIntegratorModel a(lin), b(nl);
  for (int i = 0; i < 50; ++i) {
    a.update(1.0);
    b.update(1.0);
  }
  EXPECT_GT(b.output(), a.output());  // positive coefficient grows faster
}

TEST(ReferencesTest, SpecChecks) {
  ProcessVariation pv(11);
  const auto vref = VoltageReference::make(2.5, pv);
  EXPECT_TRUE(vref.within_spec());
  const auto mirror = CurrentMirror::make(2.0, pv);
  EXPECT_TRUE(mirror.within_spec());
  EXPECT_NEAR(mirror.output_current(10e-6), 20e-6, 20e-6 * 0.02);
  const auto osc = Oscillator::make(100e3, pv);
  EXPECT_TRUE(osc.within_spec());
  EXPECT_NEAR(osc.period_s(), 10e-6, 10e-6 * 0.05);
}

TEST(ReferencesTest, OscillatorClockToggle) {
  ProcessVariation pv = ProcessVariation::nominal();
  const auto osc = Oscillator::make(100e3, pv);
  const auto clk = osc.clock();
  EXPECT_DOUBLE_EQ(clk.value(1e-6), 5.0);   // first half: high
  EXPECT_DOUBLE_EQ(clk.value(7e-6), 0.0);   // second half: low
}

// --- Transistor-level OP1 (Figure 3) ---

TEST(Op1Test, OperatingPointIsSane) {
  circuit::Netlist n;
  const Op1Nodes nodes = build_op1(n);
  // Tie both inputs to mid-rail.
  n.add<circuit::VoltageSource>(n.find_node(nodes.in_plus), circuit::kGround, 2.5);
  n.add<circuit::VoltageSource>(n.find_node(nodes.in_minus), circuit::kGround, 2.5);
  const circuit::DcResult op = circuit::dc_operating_point(n);
  // Bias line must sit a threshold-ish below VDD; tail below VDD.
  EXPECT_GT(op.voltage(nodes.bias_p), 2.0);
  EXPECT_LT(op.voltage(nodes.bias_p), 4.6);
  EXPECT_GT(op.voltage(nodes.bias_n), 0.4);
  EXPECT_LT(op.voltage(nodes.bias_n), 2.5);
  // All internal nodes within the rails.
  for (int k = 3; k <= 9; ++k) {
    const double v = op.voltage(nodes.numbered(k));
    EXPECT_GE(v, -0.01) << "node " << k;
    EXPECT_LE(v, 5.01) << "node " << k;
  }
}

TEST(Op1Test, OutputRespondsToDifferentialInput) {
  // Drive a large differential input both ways: output must swing.
  auto out_for = [](double vplus) {
    circuit::Netlist n;
    const Op1Nodes nodes = build_op1(n);
    n.add<circuit::VoltageSource>(n.find_node(nodes.in_plus), circuit::kGround, vplus);
    n.add<circuit::VoltageSource>(n.find_node(nodes.in_minus), circuit::kGround, 2.5);
    return circuit::dc_operating_point(n).voltage(nodes.out);
  };
  const double hi = out_for(3.0);
  const double lo = out_for(2.0);
  EXPECT_GT(hi, 4.0);  // In+ well above In- -> output high
  EXPECT_LT(lo, 1.0);  // In+ well below In- -> output low
}

TEST(Op1Test, UnityFollowerTracksInput) {
  // Close the loop: out -> In-. A working op-amp follows In+.
  for (double target : {1.5, 2.5, 3.5}) {
    circuit::Netlist n;
    const Op1Nodes nodes = build_op1(n);
    n.add<circuit::VoltageSource>(n.find_node(nodes.in_plus), circuit::kGround, target);
    // Feedback wire: ideal 1-ohm connection from out to In-.
    n.add<circuit::Resistor>(n.find_node(nodes.out), n.find_node(nodes.in_minus), 1.0);
    n.add<circuit::Resistor>(n.find_node(nodes.in_minus), circuit::kGround, 1e9);
    const circuit::DcResult op = circuit::dc_operating_point(n);
    EXPECT_NEAR(op.voltage(nodes.out), target, 0.15) << "target=" << target;
  }
}

TEST(Op1Test, TransistorCountMatchesPaper) {
  circuit::Netlist n;
  build_op1(n);
  int mos = 0;
  for (const auto& el : n.elements()) {
    if (dynamic_cast<const circuit::Mosfet*>(el.get()) != nullptr) ++mos;
  }
  EXPECT_EQ(mos, kOp1TransistorCount);
}

TEST(Op1Test, PrefixIsolatesInstances) {
  circuit::Netlist n;
  Op1Options a, b;
  a.prefix = "u1_";
  b.prefix = "u2_";
  const Op1Nodes na = build_op1(n, a);
  const Op1Nodes nb = build_op1(n, b);
  EXPECT_NE(na.out, nb.out);
  EXPECT_NE(n.find_node(na.out), n.find_node(nb.out));
}

}  // namespace
}  // namespace msbist::analog
