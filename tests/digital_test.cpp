// Unit tests for the digital sub-macros: counter, latch, control FSM,
// monotonicity checker, scan chain, LFSR/MISR.
#include <gtest/gtest.h>

#include "digital/counter.h"
#include "digital/fsm.h"
#include "digital/latch.h"
#include "digital/signature.h"

namespace msbist::digital {
namespace {

TEST(Counter, CountsWhenEnabled) {
  BinaryCounter c(8);
  c.set_enable(true);
  for (int i = 0; i < 5; ++i) c.clock();
  EXPECT_EQ(c.count(), 5u);
}

TEST(Counter, HoldsWhenDisabled) {
  BinaryCounter c(8);
  c.set_enable(true);
  c.clock();
  c.set_enable(false);
  for (int i = 0; i < 5; ++i) c.clock();
  EXPECT_EQ(c.count(), 1u);
}

TEST(Counter, ClearResets) {
  BinaryCounter c(4);
  c.set_enable(true);
  for (int i = 0; i < 7; ++i) c.clock();
  c.clear();
  EXPECT_EQ(c.count(), 0u);
  EXPECT_FALSE(c.overflowed());
}

TEST(Counter, WrapsAndFlagsOverflow) {
  BinaryCounter c(3);  // max 7
  c.set_enable(true);
  for (int i = 0; i < 8; ++i) c.clock();
  EXPECT_EQ(c.count(), 0u);
  EXPECT_TRUE(c.overflowed());
}

TEST(Counter, StuckBitFaultMasksOutput) {
  CounterFaults f;
  f.stuck_bit = 1;  // bit 1 stuck low
  f.stuck_bit_high = false;
  BinaryCounter c(8, f);
  c.set_enable(true);
  for (int i = 0; i < 3; ++i) c.clock();  // raw 3 = 0b11
  EXPECT_EQ(c.raw_count(), 3u);
  EXPECT_EQ(c.count(), 1u);  // bit1 forced low
}

TEST(Counter, StuckBitHigh) {
  CounterFaults f;
  f.stuck_bit = 2;
  f.stuck_bit_high = true;
  BinaryCounter c(8, f);
  EXPECT_EQ(c.count(), 4u);  // bit2 forced high even at zero
}

TEST(Counter, MissEveryNthPulse) {
  CounterFaults f;
  f.miss_every = 4;
  BinaryCounter c(8, f);
  c.set_enable(true);
  for (int i = 0; i < 8; ++i) c.clock();
  EXPECT_EQ(c.count(), 6u);  // two pulses swallowed
}

TEST(Counter, InvalidConfigThrows) {
  EXPECT_THROW(BinaryCounter(0), std::invalid_argument);
  CounterFaults f;
  f.stuck_bit = 9;
  EXPECT_THROW(BinaryCounter(8, f), std::invalid_argument);
}

TEST(Latch, LoadsAndMasksWidth) {
  OutputLatch l(4);
  l.load(0x1F);
  EXPECT_EQ(l.q(), 0x0Fu);
}

TEST(Latch, StuckBitsApply) {
  LatchFaults f;
  f.stuck_high_mask = 0b0001;
  f.stuck_low_mask = 0b1000;
  OutputLatch l(4, f);
  l.load(0b1010);
  EXPECT_EQ(l.q(), 0b0011u);
}

TEST(Latch, LoadDisabledKeepsStaleData) {
  LatchFaults f;
  f.load_disabled = true;
  OutputLatch l(8, f);
  l.load(42);
  EXPECT_EQ(l.q(), 0u);
}

TEST(ControlFsm, NormalConversionSequence) {
  DualSlopeControl fsm(4, 100);
  fsm.start();
  EXPECT_EQ(fsm.phase(), ConvPhase::kAutoZero);
  // Auto-zero clock.
  auto out = fsm.clock(false);
  EXPECT_TRUE(out.counter_clear);
  // Integrate for 4 clocks.
  for (int i = 0; i < 4; ++i) {
    out = fsm.clock(false);
    EXPECT_TRUE(out.connect_input) << "i=" << i;
  }
  EXPECT_EQ(fsm.phase(), ConvPhase::kDeintegrate);
  // De-integrate 3 clocks, then the comparator trips.
  for (int i = 0; i < 3; ++i) {
    out = fsm.clock(false);
    EXPECT_TRUE(out.connect_ref);
    EXPECT_TRUE(out.counter_enable);
  }
  out = fsm.clock(true);
  EXPECT_TRUE(out.latch_strobe);
  EXPECT_TRUE(fsm.done());
  EXPECT_FALSE(fsm.timed_out());
  EXPECT_EQ(fsm.deintegrate_clocks(), 4u);
}

TEST(ControlFsm, TimeoutWhenComparatorNeverTrips) {
  DualSlopeControl fsm(2, 5);
  fsm.start();
  fsm.clock(false);                           // auto-zero
  for (int i = 0; i < 2; ++i) fsm.clock(false);  // integrate
  ControlOutputs out;
  for (int i = 0; i < 5; ++i) out = fsm.clock(false);
  EXPECT_TRUE(fsm.done());
  EXPECT_TRUE(fsm.timed_out());
  EXPECT_TRUE(out.latch_strobe);
}

TEST(ControlFsm, StuckPhaseFreezesConversion) {
  ControlFaults f;
  f.stuck_phase = ConvPhase::kIntegrate;
  DualSlopeControl fsm(2, 5, f);
  fsm.start();
  fsm.clock(false);  // auto-zero -> integrate
  for (int i = 0; i < 50; ++i) fsm.clock(true);
  EXPECT_EQ(fsm.phase(), ConvPhase::kIntegrate);
  EXPECT_FALSE(fsm.done());
}

TEST(ControlFsm, RestartAfterDone) {
  DualSlopeControl fsm(1, 10);
  fsm.start();
  fsm.clock(false);
  fsm.clock(false);
  fsm.clock(true);
  EXPECT_TRUE(fsm.done());
  fsm.start();
  EXPECT_EQ(fsm.phase(), ConvPhase::kAutoZero);
}

TEST(Monotonicity, AcceptsNonDecreasing) {
  MonotonicityChecker mc;
  for (std::uint32_t c : {1u, 1u, 2u, 3u, 3u, 7u}) mc.observe(c);
  const auto r = mc.report();
  EXPECT_TRUE(r.monotonic);
  EXPECT_EQ(r.violations, 0u);
  EXPECT_EQ(r.max_code, 7u);
}

TEST(Monotonicity, FlagsDecrease) {
  MonotonicityChecker mc;
  for (std::uint32_t c : {1u, 2u, 1u, 3u}) mc.observe(c);
  const auto r = mc.report();
  EXPECT_FALSE(r.monotonic);
  EXPECT_EQ(r.violations, 1u);
  EXPECT_EQ(r.first_violation_index, 2u);
}

TEST(Monotonicity, ResetClears) {
  MonotonicityChecker mc;
  mc.observe(5);
  mc.observe(1);
  mc.reset();
  mc.observe(0);
  EXPECT_TRUE(mc.report().monotonic);
}

TEST(Lfsr, GeneratesNonTrivialStream) {
  PatternLfsr lfsr(8, 0xB8, 1);
  int ones = 0;
  for (int i = 0; i < 255; ++i) ones += lfsr.next_bit();
  EXPECT_EQ(ones, 128);  // balance property of a maximal sequence
}

TEST(Lfsr, ZeroSeedThrows) {
  EXPECT_THROW(PatternLfsr(8, 0xB8, 0), std::invalid_argument);
}

TEST(MisrTest, DeterministicSignature) {
  Misr a, b;
  const std::vector<std::uint32_t> stream{1, 2, 3, 250, 251, 10};
  a.compact_all(stream);
  b.compact_all(stream);
  EXPECT_EQ(a.signature(), b.signature());
}

TEST(MisrTest, SingleWordErrorChangesSignature) {
  Misr a, b;
  std::vector<std::uint32_t> good{10, 20, 30, 40, 50};
  std::vector<std::uint32_t> bad = good;
  bad[2] ^= 0x4;  // one flipped bit mid-stream
  a.compact_all(good);
  b.compact_all(bad);
  EXPECT_NE(a.signature(), b.signature());
}

TEST(MisrTest, OrderSensitivity) {
  Misr a, b;
  a.compact_all({1, 2, 3});
  b.compact_all({3, 2, 1});
  EXPECT_NE(a.signature(), b.signature());
}

TEST(MisrTest, ResetRestoresSeed) {
  Misr m;
  m.compact(99);
  m.reset(0);
  EXPECT_EQ(m.signature(), 0u);
}

TEST(Scan, ShiftThrough) {
  ScanChain sc(4);
  // Shift in 1,0,1,1; the chain was zeros so zeros fall out first.
  EXPECT_EQ(sc.shift(1), 0);
  EXPECT_EQ(sc.shift(0), 0);
  EXPECT_EQ(sc.shift(1), 0);
  EXPECT_EQ(sc.shift(1), 0);
  // Now the first bit shifted in emerges.
  EXPECT_EQ(sc.shift(0), 1);
}

TEST(Scan, CaptureAndShiftOut) {
  ScanChain sc(3);
  sc.capture({1, 0, 1});
  const auto out = sc.shift_vector({0, 0, 0});
  EXPECT_EQ(out, (std::vector<int>{1, 0, 1}));
}

TEST(Scan, CaptureWidthMismatchThrows) {
  ScanChain sc(3);
  EXPECT_THROW(sc.capture({1, 0}), std::invalid_argument);
}

}  // namespace
}  // namespace msbist::digital
