// circuit::BatchTransient + production::run_batch_lockstep: lockstep
// waveforms must match one-die-at-a-time sparse transients (bitwise for
// the pivot-defining variant, < 1e-9 relative for the rest), per-lane
// failures must stay in their lane, and topology-contract violations
// must be rejected up front.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "circuit/batch_transient.h"
#include "circuit/elements.h"
#include "circuit/netlist.h"
#include "circuit/transient.h"
#include "core/error.h"
#include "production/batch.h"

namespace msbist::circuit {
namespace {

constexpr std::size_t kCells = 12;

/// The sparse-backend test's bus-fed RC macro array, parameterized the
/// Monte-Carlo way: same topology every time, element values scaled by a
/// per-variant factor.
void build_macro_array(Netlist& n, double r_scale, double c_scale,
                       double amp_scale) {
  const NodeId stim = n.node("stim");
  const NodeId bus = n.node("bus");
  const NodeId out = n.node("out");
  n.add<VoltageSource>(
      stim, kGround, std::make_shared<SineWave>(2.5, 2.5 * amp_scale, 50e3));
  n.name_last("VSTIM");
  n.add<Resistor>(stim, bus, 100.0 * r_scale);
  n.add<Resistor>(bus, out, 1e3 * r_scale);
  n.add<Resistor>(out, kGround, 10e3 * r_scale);
  n.add<Capacitor>(out, kGround, 10e-9 * c_scale);
  for (std::size_t i = 0; i < kCells; ++i) {
    const NodeId cell = n.node("cell" + std::to_string(i));
    n.add<Resistor>(bus, cell,
                    (1e3 + 10.0 * static_cast<double>(i)) * r_scale);
    n.add<Capacitor>(cell, kGround,
                     (1e-9 + 1e-11 * static_cast<double>(i)) * c_scale);
  }
}

double variant_scale(std::size_t v, double step) {
  return 1.0 + step * static_cast<double>(v);
}

BatchTransientOptions array_options() {
  BatchTransientOptions opts;
  opts.dt = 100e-9;
  opts.t_stop = 10e-6;
  return opts;
}

double max_rel_diff(const std::vector<double>& a,
                    const std::vector<double>& b) {
  EXPECT_EQ(a.size(), b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    const double scale = std::max({std::abs(a[i]), std::abs(b[i]), 1e-12});
    worst = std::max(worst, std::abs(a[i] - b[i]) / scale);
  }
  return worst;
}

TEST(BatchTransient, LockstepMatchesScalarSparseTransients) {
  constexpr std::size_t kVariants = 5;
  std::vector<std::unique_ptr<Netlist>> nets;
  std::vector<Netlist*> variants;
  for (std::size_t v = 0; v < kVariants; ++v) {
    nets.push_back(std::make_unique<Netlist>());
    build_macro_array(*nets.back(), variant_scale(v, 0.03),
                      variant_scale(v, 0.02), variant_scale(v, 0.01));
    variants.push_back(nets.back().get());
  }
  const BatchTransientOptions opts = array_options();
  const BatchTransientReport report = BatchTransient(opts).run(variants);

  ASSERT_EQ(report.variants.size(), kVariants);
  EXPECT_EQ(report.stats.symbolic_analyses, 1u);
  EXPECT_EQ(report.stats.failed_variants, 0u);
  EXPECT_EQ(report.stats.variants, kVariants);

  for (std::size_t v = 0; v < kVariants; ++v) {
    ASSERT_TRUE(report.variants[v].ok()) << "variant " << v;
    Netlist scalar_net;
    build_macro_array(scalar_net, variant_scale(v, 0.03),
                      variant_scale(v, 0.02), variant_scale(v, 0.01));
    TransientOptions scalar_opts;
    scalar_opts.dt = opts.dt;
    scalar_opts.t_stop = opts.t_stop;
    scalar_opts.newton.backend = SolverBackend::kSparse;
    const TransientResult scalar = transient(scalar_net, scalar_opts);
    const TransientResult& lane = *report.variants[v].result;
    if (v == 0) {
      // Variant 0 defines the shared pivot sequence, so its lane replays
      // the exact arithmetic of its own scalar factorization: bitwise.
      EXPECT_EQ(lane.voltage("out"), scalar.voltage("out"));
      EXPECT_EQ(lane.voltage("bus"), scalar.voltage("bus"));
      EXPECT_EQ(lane.current("VSTIM"), scalar.current("VSTIM"));
    } else {
      // Other lanes reuse variant 0's pivot order where their own scalar
      // factorization may pivot differently: same documented < 1e-9
      // relative gate as dense-vs-sparse.
      EXPECT_LT(max_rel_diff(lane.voltage("out"), scalar.voltage("out")),
                1e-9)
          << "variant " << v;
      EXPECT_LT(max_rel_diff(lane.current("VSTIM"), scalar.current("VSTIM")),
                1e-9)
          << "variant " << v;
    }
  }
}

TEST(BatchTransient, SeedFailureStaysInItsLane) {
  // Lane 2's source amplitude is pushed to the edge of double range, so
  // its DC seed solve overflows; the other lanes must finish untouched.
  constexpr std::size_t kVariants = 4;
  std::vector<std::unique_ptr<Netlist>> nets;
  std::vector<Netlist*> variants;
  for (std::size_t v = 0; v < kVariants; ++v) {
    nets.push_back(std::make_unique<Netlist>());
    build_macro_array(*nets.back(), 1.0, 1.0, 1.0);
    variants.push_back(nets.back().get());
  }
  // Rebuild lane 2 with the same topology but pathological values: a
  // near-double-range DC offset into a micro-ohm feed resistor drives
  // the source branch current past double range in the seed solve.
  nets[2] = std::make_unique<Netlist>();
  {
    Netlist& n = *nets[2];
    const NodeId stim = n.node("stim");
    const NodeId bus = n.node("bus");
    const NodeId out = n.node("out");
    n.add<VoltageSource>(stim, kGround,
                         std::make_shared<SineWave>(1e308, 1.0, 50e3));
    n.name_last("VSTIM");
    n.add<Resistor>(stim, bus, 1e-4);
    n.add<Resistor>(bus, out, 1e3);
    n.add<Resistor>(out, kGround, 10e3);
    n.add<Capacitor>(out, kGround, 10e-9);
    for (std::size_t i = 0; i < kCells; ++i) {
      const NodeId cell = n.node("cell" + std::to_string(i));
      n.add<Resistor>(bus, cell, 1e3 + 10.0 * static_cast<double>(i));
      n.add<Capacitor>(cell, kGround, 1e-9 + 1e-11 * static_cast<double>(i));
    }
    variants[2] = nets[2].get();
  }
  BatchTransientOptions opts = array_options();
  opts.newton.damping_retries = 0;
  const BatchTransientReport report = BatchTransient(opts).run(variants);
  ASSERT_EQ(report.variants.size(), kVariants);
  EXPECT_EQ(report.stats.failed_variants, 1u);
  for (std::size_t v = 0; v < kVariants; ++v) {
    if (v == 2) {
      ASSERT_FALSE(report.variants[v].ok());
      EXPECT_EQ(report.variants[v].failure->analysis, "batch_transient/seed");
    } else {
      ASSERT_TRUE(report.variants[v].ok()) << "variant " << v;
      // Healthy lanes produce finite waveforms end to end.
      for (double x : report.variants[v].result->voltage("out")) {
        ASSERT_TRUE(std::isfinite(x));
      }
    }
  }
}

TEST(BatchTransient, MismatchedTopologyIsRejected) {
  Netlist a;
  Netlist b;
  build_macro_array(a, 1.0, 1.0, 1.0);
  build_macro_array(b, 1.1, 1.0, 1.0);
  b.add<Resistor>(b.find_node("bus"), kGround, 1e6);  // extra element
  std::vector<Netlist*> variants{&a, &b};
  EXPECT_THROW(BatchTransient(array_options()).run(variants),
               std::invalid_argument);
}

TEST(BatchTransient, NonlinearVariantIsRejected) {
  Netlist a;
  build_macro_array(a, 1.0, 1.0, 1.0);
  a.add<VoltageSwitch>(a.find_node("out"), kGround, a.find_node("out"),
                       kGround, /*threshold=*/2.5, /*r_on=*/1.0,
                       /*r_off=*/1e9);
  std::vector<Netlist*> variants{&a};
  EXPECT_THROW(BatchTransient(array_options()).run(variants),
               std::invalid_argument);
}

TEST(BatchTransient, SingularPopulationIsBatchLevelTypedError) {
  // Two sources fighting over one node in every lane: singular even under
  // private re-pivoting, so the shared factorization raises the same
  // typed error the scalar solver would.
  auto build = [](Netlist& n, double v) {
    const NodeId a = n.node("a");
    n.add<VoltageSource>(a, kGround, 1.0 * v);
    n.add<VoltageSource>(a, kGround, 2.0 * v);
    n.add<Resistor>(a, kGround, 1e3);
  };
  Netlist n0;
  Netlist n1;
  build(n0, 1.0);
  build(n1, 1.5);
  std::vector<Netlist*> variants{&n0, &n1};
  BatchTransientOptions opts = array_options();
  opts.erc = false;
  opts.use_initial_conditions = true;  // skip the (also singular) DC seed
  EXPECT_THROW(BatchTransient(opts).run(variants), core::SingularMatrixError);
}

}  // namespace
}  // namespace msbist::circuit

namespace msbist::production {
namespace {

using circuit::Capacitor;
using circuit::kGround;
using circuit::Netlist;
using circuit::NodeId;
using circuit::Resistor;
using circuit::VoltageSource;

/// Seed-derived RC time constant: every die charges the same node through
/// a slightly different resistor.
void build_die(const DieSpec& spec, Netlist& n) {
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  // Map the seed into a +/-10% spread around 1 kOhm.
  const double unit =
      static_cast<double>(spec.seed % 1000u) / 999.0;  // [0, 1]
  n.add<VoltageSource>(in, kGround, 5.0);
  n.name_last("VDD");
  n.add<Resistor>(in, out, 1e3 * (0.9 + 0.2 * unit));
  n.add<Capacitor>(out, kGround, 100e-9);
}

TEST(RunBatchLockstep, ScreensAPopulationLikeRunBatch) {
  std::vector<DieSpec> population;
  for (std::size_t i = 0; i < 6; ++i) {
    DieSpec d;
    d.seed = device_seed(2026, i);
    d.label = "die " + std::to_string(i + 1);
    population.push_back(d);
  }

  LockstepPlan plan;
  plan.build = build_die;
  plan.transient.dt = 5e-6;
  plan.transient.t_stop = 1e-3;
  plan.evaluate = [](const DieSpec&, const circuit::TransientResult& tr) {
    // After ~2 time constants every healthy die sits well above 4 V.
    const double final_v = tr.voltage("out").back();
    return final_v > 4.0
               ? core::Outcome::ok()
               : core::Outcome::fail("out only reached " +
                                     std::to_string(final_v) + " V");
  };

  const BatchReport report = run_batch_lockstep(population, plan);
  ASSERT_EQ(report.devices.size(), population.size());
  EXPECT_EQ(report.passed, population.size());
  EXPECT_EQ(report.degraded_count, 0u);
  // Slot order and identity follow the population, like run_batch.
  for (std::size_t i = 0; i < population.size(); ++i) {
    EXPECT_EQ(report.devices[i].index, i);
    EXPECT_EQ(report.devices[i].seed, population[i].seed);
    EXPECT_EQ(report.devices[i].label, population[i].label);
  }
}

TEST(RunBatchLockstep, EvaluateExceptionDegradesOnlyThatDie) {
  std::vector<DieSpec> population;
  for (std::size_t i = 0; i < 3; ++i) {
    DieSpec d;
    d.seed = device_seed(7, i);
    d.label = "die " + std::to_string(i + 1);
    population.push_back(d);
  }
  LockstepPlan plan;
  plan.build = build_die;
  plan.transient.dt = 5e-6;
  plan.transient.t_stop = 200e-6;
  plan.evaluate = [&](const DieSpec& spec,
                      const circuit::TransientResult&) -> core::Outcome {
    if (spec.seed == population[1].seed) {
      throw std::runtime_error("tester glitch");
    }
    return core::Outcome::ok();
  };
  const BatchReport report = run_batch_lockstep(population, plan);
  ASSERT_EQ(report.devices.size(), 3u);
  EXPECT_EQ(report.passed, 2u);
  EXPECT_EQ(report.degraded_count, 1u);
  EXPECT_TRUE(report.devices[1].degraded);
  ASSERT_EQ(report.devices[1].failures.size(), 1u);
  EXPECT_EQ(report.devices[1].failures[0].code, core::ErrorCode::kInternal);
  EXPECT_EQ(report.devices[1].failures[0].analysis,
            "production/lockstep_evaluate");
}

}  // namespace
}  // namespace msbist::production
