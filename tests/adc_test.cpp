// Unit tests for the dual-slope ADC macro and specification metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "adc/dual_slope.h"
#include "adc/metrics.h"
#include "adc/sigma_delta.h"
#include "analog/macro.h"

namespace msbist::adc {
namespace {

TEST(DualSlope, LsbIsTenMillivolts) {
  DualSlopeAdc adc(DualSlopeAdcConfig::ideal());
  EXPECT_NEAR(adc.lsb_volts(), 0.01, 1e-12);
}

TEST(DualSlope, FallTimeMatchesPaperStepTable) {
  // Paper: steps 0, 0.59, 0.96, 1.41, 1.8, 2.5 V give fall times
  // 2.6, 2.2, 1.9, 1.2, 0.8, 0.1 ms. Our model implements the linear law
  // T2 = (Vref - Vin) * 1 ms/V + 0.1 ms that those measurements scatter
  // around; assert the law, not the scatter.
  DualSlopeAdc adc(DualSlopeAdcConfig::ideal());
  const double steps[] = {0.0, 0.59, 0.96, 1.41, 1.8, 2.5};
  for (double v : steps) {
    const ConversionResult r = adc.convert(v);
    const double expected = (2.5 - v) * 1e-3 + 0.1e-3;
    EXPECT_NEAR(r.fall_time_s, expected, 25e-6) << "vin=" << v;
  }
}

TEST(DualSlope, ConversionTimeWithinSpec) {
  // Spec: conversion time max 5.6 ms at 100 kHz.
  DualSlopeAdc adc(DualSlopeAdcConfig::ideal());
  for (double v = 0.0; v <= 2.5; v += 0.25) {
    const ConversionResult r = adc.convert(v);
    EXPECT_TRUE(r.completed);
    EXPECT_LT(r.conversion_time_s, 5.6e-3) << "vin=" << v;
  }
}

TEST(DualSlope, TenMillivoltsPerCode) {
  // Paper: "10 mV input for each incremented output code change" and
  // 10 us fall-time difference per code.
  DualSlopeAdc adc(DualSlopeAdcConfig::ideal());
  const ConversionResult a = adc.convert(1.00);
  const ConversionResult b = adc.convert(1.01);
  EXPECT_EQ(a.code, b.code + 1);
  EXPECT_NEAR(a.fall_time_s - b.fall_time_s, 10e-6, 1e-9);
}

TEST(DualSlope, CodeDecreasesWithInput) {
  DualSlopeAdc adc(DualSlopeAdcConfig::ideal());
  EXPECT_EQ(adc.code_for(0.0), adc.full_scale_code());
  EXPECT_GT(adc.code_for(0.5), adc.code_for(1.5));
  EXPECT_EQ(adc.code_for(2.5), adc.pedestal_counts());
}

TEST(DualSlope, IdealCodeMatchesConversion) {
  DualSlopeAdc adc(DualSlopeAdcConfig::ideal());
  for (double v = 0.0; v <= 2.5; v += 0.173) {
    EXPECT_NEAR(static_cast<double>(adc.code_for(v)),
                static_cast<double>(adc.ideal_code(v)), 1.0)
        << "vin=" << v;
  }
}

TEST(DualSlope, IntegratorPeakTracksInput) {
  // Peak = baseline + pedestal + (Vref - Vin); feeds the BIST level sensor.
  DualSlopeAdc adc(DualSlopeAdcConfig::ideal());
  EXPECT_NEAR(adc.convert(0.0).integrator_peak_v, 0.7 + 0.1 + 2.5, 0.02);
  EXPECT_NEAR(adc.convert(1.5).integrator_peak_v, 0.7 + 0.1 + 1.0, 0.02);
  EXPECT_NEAR(adc.convert(2.5).integrator_peak_v, 0.8, 0.02);
}

TEST(DualSlope, StuckControlNeverCompletes) {
  DualSlopeAdcConfig cfg = DualSlopeAdcConfig::ideal();
  cfg.control_faults.stuck_phase = digital::ConvPhase::kIntegrate;
  DualSlopeAdc adc(cfg);
  const ConversionResult r = adc.convert(1.0);
  EXPECT_FALSE(r.completed);
}

TEST(DualSlope, CounterStuckBitCorruptsCodes) {
  DualSlopeAdcConfig cfg = DualSlopeAdcConfig::ideal();
  cfg.counter_faults.stuck_bit = 3;
  DualSlopeAdc good(DualSlopeAdcConfig::ideal());
  DualSlopeAdc bad(cfg);
  int mismatches = 0;
  for (double v = 0.1; v < 2.5; v += 0.2) {
    if (good.code_for(v) != bad.code_for(v)) ++mismatches;
  }
  EXPECT_GT(mismatches, 5);
}

TEST(DualSlope, LatchStuckBitsGiveMultipleWrongCodes) {
  // Paper: "faults in the output latch submacro will manifest as multiple
  // incorrect output codes".
  DualSlopeAdcConfig cfg = DualSlopeAdcConfig::ideal();
  cfg.latch_faults.stuck_high_mask = 0x10;
  DualSlopeAdc good(DualSlopeAdcConfig::ideal());
  DualSlopeAdc bad(cfg);
  int wrong = 0;
  for (double v = 0.05; v < 2.5; v += 0.1) {
    if (good.code_for(v) != bad.code_for(v)) ++wrong;
  }
  EXPECT_GT(wrong, 8);
}

TEST(DualSlope, ComparatorOffsetShiftsAllCodes) {
  DualSlopeAdcConfig cfg = DualSlopeAdcConfig::ideal();
  cfg.comparator.offset_v = 0.05;  // 5 LSB worth of threshold shift
  DualSlopeAdc good(DualSlopeAdcConfig::ideal());
  DualSlopeAdc bad(cfg);
  // Offset moves the trip point; every code shifts by ~the same amount.
  const int d1 = static_cast<int>(bad.code_for(0.5)) - static_cast<int>(good.code_for(0.5));
  const int d2 = static_cast<int>(bad.code_for(2.0)) - static_cast<int>(good.code_for(2.0));
  EXPECT_NE(d1, 0);
  EXPECT_NEAR(d1, d2, 1.0);
}

TEST(DualSlope, SymmetricNonlinearityCancels) {
  // Dual-slope rejects integrator (output-referred) nonlinearity to first
  // order: both slopes traverse the same voltage span.
  DualSlopeAdcConfig cfg = DualSlopeAdcConfig::ideal();
  cfg.integrator.nonlinearity = 1e-2;
  DualSlopeAdc ideal(DualSlopeAdcConfig::ideal());
  DualSlopeAdc bent(cfg);
  for (double v = 0.2; v <= 2.4; v += 0.4) {
    EXPECT_NEAR(static_cast<double>(bent.code_for(v)),
                static_cast<double>(ideal.code_for(v)), 1.0)
        << "vin=" << v;
  }
}

TEST(DualSlope, SymmetricRatioErrorCancels) {
  DualSlopeAdcConfig cfg = DualSlopeAdcConfig::ideal();
  cfg.integrator.ratio_error = 0.02;
  DualSlopeAdc ideal(DualSlopeAdcConfig::ideal());
  DualSlopeAdc skewed(cfg);
  for (double v = 0.2; v <= 2.4; v += 0.4) {
    EXPECT_NEAR(static_cast<double>(skewed.code_for(v)),
                static_cast<double>(ideal.code_for(v)), 1.0);
  }
}

TEST(DualSlope, InvertGainMismatchShowsAsGainError) {
  DualSlopeAdcConfig cfg = DualSlopeAdcConfig::ideal();
  cfg.integrator.invert_gain_mismatch = -0.01;  // run-down 1 % slow
  DualSlopeAdc ideal(DualSlopeAdcConfig::ideal());
  DualSlopeAdc skewed(cfg);
  // Slower run-down -> more counts, scaling with the integrated voltage.
  const int lo = static_cast<int>(skewed.code_for(2.3)) - static_cast<int>(ideal.code_for(2.3));
  const int hi = static_cast<int>(skewed.code_for(0.2)) - static_cast<int>(ideal.code_for(0.2));
  EXPECT_GT(hi, lo);  // error grows toward full scale: gain error
}

TEST(DualSlope, NoiseIsSeededAndReproducible) {
  DualSlopeAdcConfig cfg = DualSlopeAdcConfig::characterized();
  DualSlopeAdc a(cfg), b(cfg);
  for (double v = 0.1; v < 1.0; v += 0.0937) {
    EXPECT_EQ(a.code_for(v), b.code_for(v));
  }
}

// --- Metrics ---

// Ascending ideal quantizer for metric tests: code = floor(v / lsb).
AdcTransferFn ideal_quantizer(double lsb) {
  return [lsb](double v) {
    return static_cast<std::uint32_t>(std::max(0.0, std::floor(v / lsb)));
  };
}

TEST(Metrics, IdealQuantizerHasZeroErrors) {
  const double lsb = 0.01;
  const auto tl = measure_transitions_ramp(ideal_quantizer(lsb), 0.001, 0.301,
                                           lsb / 50.0);
  ASSERT_GE(tl.transitions.size(), 25u);
  // First measured transition is base_code -> base_code+1 at (base+1)*lsb.
  const double ideal_first = (static_cast<double>(tl.base_code) + 1.0) * lsb;
  const AdcMetrics m = compute_metrics(tl, lsb, ideal_first);
  EXPECT_NEAR(m.offset_lsb, 0.0, 0.05);
  EXPECT_NEAR(m.gain_error_lsb, 0.0, 0.1);
  EXPECT_LT(m.max_abs_dnl, 0.05);
  EXPECT_LT(m.max_abs_inl, 0.05);
}

TEST(Metrics, DetectsPureOffset) {
  const double lsb = 0.01, offset = 0.025;
  AdcTransferFn adc = [=](double v) {
    return static_cast<std::uint32_t>(std::max(0.0, std::floor((v - offset) / lsb)));
  };
  const auto tl = measure_transitions_ramp(adc, 0.03, 0.3, lsb / 50.0);
  const double ideal_first = (static_cast<double>(tl.base_code) + 1.0) * lsb;
  const AdcMetrics m = compute_metrics(tl, lsb, ideal_first);
  EXPECT_NEAR(m.offset_lsb, offset / lsb, 0.1);
  EXPECT_LT(m.max_abs_dnl, 0.05);
}

TEST(Metrics, DetectsPureGainError) {
  const double lsb = 0.01;
  const double gain = 1.02;  // codes come 2 % fast
  AdcTransferFn adc = [=](double v) {
    return static_cast<std::uint32_t>(std::max(0.0, std::floor(v * gain / lsb)));
  };
  const auto tl = measure_transitions_ramp(adc, 0.001, 0.5, lsb / 50.0);
  const double ideal_first = (static_cast<double>(tl.base_code) + 1.0) * lsb / gain;
  const AdcMetrics m = compute_metrics(tl, lsb, ideal_first);
  const double span = static_cast<double>(tl.transitions.size() - 1);
  EXPECT_NEAR(m.gain_error_lsb, span * (1.0 / gain - 1.0), 0.25);
  EXPECT_LT(m.max_abs_dnl, 0.05);  // gain error is not DNL
}

TEST(Metrics, MissingCodeShowsMinusOneDnl) {
  const double lsb = 0.01;
  AdcTransferFn adc = [=](double v) {
    auto c = static_cast<std::uint32_t>(std::max(0.0, std::floor(v / lsb)));
    if (c >= 10) ++c;  // code 10 never appears
    return c;
  };
  const auto tl = measure_transitions_ramp(adc, 0.001, 0.3, lsb / 50.0);
  const double ideal_first = (static_cast<double>(tl.base_code) + 1.0) * lsb;
  const AdcMetrics m = compute_metrics(tl, lsb, ideal_first);
  double min_dnl = 1e9;
  for (double d : m.dnl_lsb) min_dnl = std::min(min_dnl, d);
  EXPECT_NEAR(min_dnl, -1.0, 0.05);
}

TEST(Metrics, RampIncludesInexactEndpoint) {
  // 0 -> 2.5 V in 0.1 V steps: 25 steps exactly, but 0.1 is inexact in
  // binary, so a naive `v += step_v; while (v <= v_hi)` sweep accumulates
  // past 2.5 and silently drops the final point — losing the transition
  // at 2.5 V. Index-based stepping must keep it.
  const double lsb = 0.5;
  const auto tl = measure_transitions_ramp(ideal_quantizer(lsb), 0.0, 2.5, 0.1);
  // Transitions at 0.5, 1.0, 1.5, 2.0 and 2.5 — the last one exists only
  // if the sweep actually samples v = 2.5.
  ASSERT_EQ(tl.transitions.size(), 5u);
  EXPECT_NEAR(tl.transitions.back(), 2.5, 0.1 + 1e-9);
  EXPECT_TRUE(tl.monotonic);
  EXPECT_TRUE(tl.reverse_transitions.empty());
}

TEST(Metrics, RampEndpointNotOvershot) {
  // A span that is *not* an exact multiple of the step must not be
  // extended past v_hi: floor(0.25 / 0.1) = 2 interior steps only.
  const auto tl = measure_transitions_ramp(ideal_quantizer(0.1), 0.001, 0.251,
                                           0.1);
  // Sweep points 0.001, 0.101, 0.201 — transitions at ~0.1 and ~0.2.
  EXPECT_EQ(tl.transitions.size(), 2u);
}

TEST(Metrics, NonMonotonicTransferIsFlaggedWithReverseTransitions) {
  // Code climbs 0,1,2,3 then rebounds to 2 over [0.32, 0.38) before
  // resuming — the missing-decision-level shape the paper's Figure 2
  // discussion cares about. The upward-only tracker used to deposit the
  // rebound's transitions at wrong voltages; now the downward crossing is
  // recorded explicitly and the sweep is flagged non-monotonic.
  AdcTransferFn adc = [](double v) -> std::uint32_t {
    auto c = static_cast<std::uint32_t>(std::max(0.0, std::floor(v / 0.1)));
    if (v >= 0.32 && v < 0.38) c = 2;
    return c;
  };
  const auto tl = measure_transitions_ramp(adc, 0.001, 0.6, 0.002);
  EXPECT_FALSE(tl.monotonic);
  ASSERT_EQ(tl.reverse_transitions.size(), 1u);
  EXPECT_NEAR(tl.reverse_transitions[0], 0.32, 0.005);
  // `transitions` keeps one entry per half-level (first upward crossing):
  // 0.1, 0.2, 0.3, 0.4, 0.5 — the rebound adds no duplicates.
  ASSERT_EQ(tl.transitions.size(), 5u);
  EXPECT_NEAR(tl.transitions[2], 0.3, 0.005);
  EXPECT_NEAR(tl.transitions[3], 0.4, 0.005);
}

TEST(Metrics, MonotonicSweepKeepsFlagTrue) {
  const auto tl =
      measure_transitions_ramp(ideal_quantizer(0.01), 0.001, 0.301, 0.0002);
  EXPECT_TRUE(tl.monotonic);
  EXPECT_TRUE(tl.reverse_transitions.empty());
}

TEST(Metrics, HistogramDnlFlatForIdeal) {
  std::vector<std::uint32_t> codes;
  for (int i = 0; i < 5000; ++i) {
    codes.push_back(ideal_quantizer(0.01)(0.0001 * static_cast<double>(i)));
  }
  const auto dnl = histogram_dnl(codes);
  ASSERT_FALSE(dnl.empty());
  for (double d : dnl) EXPECT_NEAR(d, 0.0, 0.05);
}

TEST(Metrics, HistogramDnlEmptyInputs) {
  EXPECT_TRUE(histogram_dnl({}).empty());
  EXPECT_TRUE(histogram_dnl({1u, 1u}).empty());
}

TEST(Metrics, ValidationThrows) {
  EXPECT_THROW(measure_transitions_ramp(ideal_quantizer(0.01), 1.0, 0.0, 0.001),
               std::invalid_argument);
  TransitionLevels t;
  t.transitions = {0.1, 0.2};
  EXPECT_THROW(compute_metrics(t, 0.01, 0.1), std::invalid_argument);
  EXPECT_THROW(compute_metrics(t, -1.0, 0.1), std::invalid_argument);
}

// --- Full specification test (Figure 2 / spec table) ---

TEST(Characterization, MatchesPaperSpecTable) {
  // The paper's characterized macro: gain +/-0.5 LSB, offset < 0.2 LSB,
  // INL max 1.3 LSB, DNL max 1.2 LSB over input codes 0..100.
  DualSlopeAdc adc(DualSlopeAdcConfig::characterized());
  const double lsb = adc.lsb_volts();
  AdcTransferFn xfer = [&](double v) -> std::uint32_t {
    return 300u - adc.code_for(v);
  };
  const auto tl = measure_transitions_ramp(xfer, -0.008, 1.012, 0.001, 1);
  const double ideal_first =
      (static_cast<double>(tl.base_code) - 40.0 + 0.5) * lsb;
  const AdcMetrics m = compute_metrics(tl, lsb, ideal_first);
  EXPECT_LT(std::abs(m.offset_lsb), 0.2 + 0.05);
  EXPECT_LT(std::abs(m.gain_error_lsb), 0.5 + 0.05);
  EXPECT_NEAR(m.max_abs_dnl, 1.2, 0.25);
  EXPECT_NEAR(m.max_abs_inl, 1.3, 0.25);
}

// --- Sigma-delta extension ---

TEST(SigmaDelta, TracksDcInputs) {
  SigmaDeltaAdc adc(SigmaDeltaConfig::typical());
  for (double v : {-2.0, -1.0, 0.0, 0.7, 1.9}) {
    const auto code = adc.convert(v);
    const auto ideal = adc.ideal_code(v);
    EXPECT_NEAR(static_cast<double>(code), static_cast<double>(ideal), 3.0)
        << "vin=" << v;
  }
}

TEST(SigmaDelta, MidScaleBitstreamIsBalanced) {
  SigmaDeltaAdc adc(SigmaDeltaConfig::typical());
  const auto bits = adc.bitstream(0.0);
  int ones = 0;
  for (int b : bits) ones += b;
  EXPECT_NEAR(ones, static_cast<int>(bits.size()) / 2, 3);
}

TEST(SigmaDelta, CodeMonotoneInInput) {
  SigmaDeltaAdc adc(SigmaDeltaConfig::typical());
  std::uint32_t prev = 0;
  for (double v = -2.4; v <= 2.4; v += 0.2) {
    const auto code = adc.convert(v);
    EXPECT_GE(code + 1, prev) << "vin=" << v;  // allow 1-count wiggle
    prev = code;
  }
}

TEST(SigmaDelta, InvalidConfigThrows) {
  SigmaDeltaConfig cfg = SigmaDeltaConfig::typical();
  cfg.osr = 0;
  EXPECT_THROW(SigmaDeltaAdc{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace msbist::adc
