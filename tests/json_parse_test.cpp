// core::JsonValue / parse_json — the read half of the wire format — and
// the core::JobRequest envelope decoded through it.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/error.h"
#include "core/job.h"
#include "core/json_value.h"
#include "core/outcome.h"

namespace {

using namespace msbist;
using core::JsonValue;
using core::parse_json;

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json("false").as_bool());
  EXPECT_DOUBLE_EQ(parse_json("-2.5e3").as_double(), -2500.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
  EXPECT_DOUBLE_EQ(parse_json("  0.125  ").as_double(), 0.125);
}

TEST(JsonParse, ExactIntegerFidelity) {
  // Seeds are 64-bit: a double-only parser would corrupt them past 2^53.
  const std::uint64_t big = 0xDEADBEEFCAFEF00Dull;  // > 2^63
  const JsonValue v = parse_json(std::to_string(big));
  ASSERT_TRUE(v.is_integer());
  EXPECT_EQ(v.as_u64(), big);

  const JsonValue neg = parse_json("-9223372036854775808");
  ASSERT_TRUE(neg.is_integer());
  EXPECT_EQ(neg.as_i64(), std::numeric_limits<std::int64_t>::min());

  // A fractional or exponent form is a plain double, never "exact".
  EXPECT_FALSE(parse_json("1.0").is_integer());
  EXPECT_FALSE(parse_json("1e3").is_integer());
}

TEST(JsonParse, ObjectsPreserveOrderAndRejectDuplicates) {
  const JsonValue v = parse_json(R"({"b":1,"a":2,"c":[3,{"d":4}]})");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "b");
  EXPECT_EQ(v.members()[1].first, "a");
  ASSERT_NE(v.find("c"), nullptr);
  EXPECT_EQ(v.find("c")->items()[1].find("d")->as_i64(), 4);
  EXPECT_EQ(v.find("missing"), nullptr);

  EXPECT_THROW(parse_json(R"({"x":1,"x":2})"), core::JsonParseError);
}

TEST(JsonParse, StringEscapesAndSurrogatePairs) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\ndA")").as_string(), "a\"b\\c\nd\x41");
  // U+1F600 via surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(parse_json(R"("😀")").as_string(), "\xF0\x9F\x98\x80");
  EXPECT_THROW(parse_json(R"("\uD83D")"), core::JsonParseError);  // lone high
}

TEST(JsonParse, StrictnessRejections) {
  EXPECT_THROW(parse_json(""), core::JsonParseError);
  EXPECT_THROW(parse_json("[1,2,]"), core::JsonParseError);  // trailing comma
  EXPECT_THROW(parse_json("{'a':1}"), core::JsonParseError); // single quotes
  EXPECT_THROW(parse_json("01"), core::JsonParseError);      // leading zero
  EXPECT_THROW(parse_json("[1] x"), core::JsonParseError);   // trailing junk
  EXPECT_THROW(parse_json("nul"), core::JsonParseError);
  try {
    parse_json("{\"a\" 1}");
    FAIL() << "expected JsonParseError";
  } catch (const core::JsonParseError& e) {
    EXPECT_GT(e.offset(), 0u);
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

TEST(JsonParse, DepthGuard) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_THROW(parse_json(deep), core::JsonParseError);
}

TEST(JsonParse, DumpRoundTrip) {
  const std::string doc =
      R"({"kind":"batch_report","schema_version":2,"seed":18446744073709551615,)"
      R"("yield":0.875,"tiers":["analog","ramp"],"nested":{"ok":true,"x":null}})";
  const JsonValue v = parse_json(doc);
  EXPECT_EQ(v.dump(), doc);          // canonical form is stable
  EXPECT_EQ(parse_json(v.dump()), v);  // parse . dump is the identity
}

TEST(JsonParse, MutatingBuilders) {
  JsonValue v = parse_json(R"({"keep":1,"drop":2})");
  EXPECT_TRUE(v.erase("drop"));
  EXPECT_FALSE(v.erase("drop"));
  v.set("added", JsonValue::string("x"));
  EXPECT_EQ(v.dump(), R"({"keep":1,"added":"x"})");
}

// --- JobRequest envelope ---------------------------------------------

TEST(JobRequestWire, FullRoundTrip) {
  const std::string doc = R"({
    "kind": "fault_campaign",
    "label": "nightly",
    "circuit": "sc_integrator_comparator",
    "collapse": false,
    "max_faults": 5,
    "threads": 4,
    "limits": {"wall_timeout_s": 2.5, "max_threads": 2}
  })";
  const core::JobRequest req = core::JobRequest::from_json_text(doc);
  EXPECT_EQ(req.kind, core::JobKind::kFaultCampaign);
  EXPECT_EQ(req.label, "nightly");
  EXPECT_EQ(req.circuit, "sc_integrator_comparator");
  EXPECT_FALSE(req.collapse);
  EXPECT_EQ(req.max_faults, 5u);
  EXPECT_EQ(req.threads, 4u);
  EXPECT_DOUBLE_EQ(req.limits.wall_timeout_s, 2.5);
  EXPECT_EQ(req.limits.max_threads, 2u);

  // to_json -> from_json is the identity on every field.
  const core::JobRequest again =
      core::JobRequest::from_json_text(core::to_json(req));
  EXPECT_EQ(core::to_json(again), core::to_json(req));
}

TEST(JobRequestWire, SeedSurvivesTheWire) {
  const std::uint64_t seed = 0xFEEDFACEDEADBEEFull;
  core::JobRequest req;
  req.kind = core::JobKind::kLockstepBatch;
  req.batch_seed = seed;
  const core::JobRequest back =
      core::JobRequest::from_json_text(core::to_json(req));
  EXPECT_EQ(back.batch_seed, seed);
}

TEST(JobRequestWire, RejectionsAreTypedBadInput) {
  const auto expect_bad = [](const std::string& doc) {
    try {
      (void)core::JobRequest::from_json_text(doc);
      FAIL() << "expected SolverError for " << doc;
    } catch (const core::SolverError& e) {
      EXPECT_EQ(e.code(), core::ErrorCode::kBadInput) << doc;
      EXPECT_FALSE(e.failure().detail.empty());
    }
  };
  expect_bad("{nope");                              // malformed JSON
  expect_bad(R"([1,2,3])");                          // not an object
  expect_bad(R"({"kind":"warp_drive"})");            // unknown kind
  expect_bad(R"({"kind":"batch","bogus":1})");       // unknown field
  expect_bad(R"({"kind":"batch","threads":"two"})"); // wrong type
  expect_bad(R"({"kind":"batch","device_count":0})");// out of range
  expect_bad(R"({"kind":"batch","schema_version":99})");  // future schema
}

TEST(JobRequestWire, IdempotencyKeyRoundTrips) {
  core::JobRequest req;
  req.kind = core::JobKind::kBatch;
  req.idempotency_key = "lot-7/retry";
  const core::JobRequest back =
      core::JobRequest::from_json_text(core::to_json(req));
  EXPECT_EQ(back.idempotency_key, "lot-7/retry");
  // Absent key stays absent — and an empty one is not emitted, so the
  // journal's admit records don't grow a vestigial field.
  const core::JobRequest plain = core::JobRequest::from_json_text(
      R"({"kind":"batch"})");
  EXPECT_TRUE(plain.idempotency_key.empty());
  EXPECT_EQ(core::to_json(plain).find("idempotency_key"), std::string::npos);
}

// Torn journal payloads: a record cut mid-write is invalid JSON at
// whatever byte the crash landed on. Every truncation prefix of a
// well-formed journal payload must fail cleanly (throw, never hang or
// accept), which is what lets recovery treat CRC-passing-but-unparseable
// lines as skippable instead of trusting a prefix parse.
TEST(JsonParse, EveryTruncationOfAJournalRecordIsRejected) {
  const std::string payload =
      R"({"type":"checkpoint","id":3,"unit":1,"total":4,)"
      R"("data":{"canon":{"seed":7,"pass":true},"data":{"index":1}}})";
  ASSERT_NO_THROW((void)parse_json(payload));
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_THROW((void)parse_json(payload.substr(0, cut)), std::exception)
        << "prefix of " << cut << " bytes parsed";
  }
}

TEST(JsonParse, JournalPayloadsWithTrailingGarbageAreRejected) {
  // A torn tail can also glue the NEXT record onto a complete payload
  // (no trailing newline on the torn line). The parser must reject the
  // merged line rather than silently taking the first document.
  EXPECT_THROW(
      (void)parse_json(R"({"type":"clean_shutdown"} {"type":"state"})"),
      std::exception);
  EXPECT_THROW((void)parse_json(R"({"type":"admit","id":1}x)"),
               std::exception);
}

}  // namespace
