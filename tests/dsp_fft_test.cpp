// Unit tests for dsp/fft.h — radix-2 and Bluestein transforms.
#include "dsp/fft.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "dsp/vec.h"

namespace msbist::dsp {
namespace {

// O(N^2) reference DFT.
cvec reference_dft(const cvec& x) {
  const std::size_t n = x.size();
  cvec out(n, {0.0, 0.0});
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t m = 0; m < n; ++m) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(k * m) /
                         static_cast<double>(n);
      out[k] += x[m] * std::complex<double>{std::cos(ang), std::sin(ang)};
    }
  }
  return out;
}

double max_error(const cvec& a, const cvec& b) {
  double e = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) e = std::max(e, std::abs(a[i] - b[i]));
  return e;
}

cvec random_signal(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  cvec x(n);
  for (auto& v : x) v = {d(rng), d(rng)};
  return x;
}

TEST(Fft, PowerOfTwoHelpers) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(1024));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_EQ(next_power_of_two(1), 1u);
  EXPECT_EQ(next_power_of_two(5), 8u);
  EXPECT_EQ(next_power_of_two(1024), 1024u);
}

TEST(Fft, EmptyInput) {
  EXPECT_TRUE(fft({}).empty());
  EXPECT_TRUE(ifft({}).empty());
}

TEST(Fft, SingleSample) {
  const cvec x{{3.0, -1.0}};
  const cvec X = fft(x);
  ASSERT_EQ(X.size(), 1u);
  EXPECT_NEAR(std::abs(X[0] - x[0]), 0.0, 1e-15);
}

TEST(Fft, ImpulseHasFlatSpectrum) {
  cvec x(8, {0.0, 0.0});
  x[0] = {1.0, 0.0};
  const cvec X = fft(x);
  for (const auto& v : X) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SineConcentratesInOneBin) {
  const std::size_t n = 64;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(2.0 * std::numbers::pi * 5.0 * static_cast<double>(i) /
                    static_cast<double>(n));
  }
  const cvec X = fft_real(x);
  // Bin 5 magnitude should be N/2; all others (except conjugate bin 59) ~0.
  EXPECT_NEAR(std::abs(X[5]), static_cast<double>(n) / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(X[59]), static_cast<double>(n) / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(X[4]), 0.0, 1e-9);
}

TEST(Fft, MatchesReferenceDftPowerOfTwo) {
  const cvec x = random_signal(32, 42);
  EXPECT_LT(max_error(fft(x), reference_dft(x)), 1e-10);
}

TEST(Fft, MatchesReferenceDftNonPowerOfTwo) {
  for (std::size_t n : {3u, 5u, 7u, 12u, 15u, 31u, 100u}) {
    const cvec x = random_signal(n, 1000 + n);
    EXPECT_LT(max_error(fft(x), reference_dft(x)), 1e-9) << "n=" << n;
  }
}

TEST(Fft, RoundTripIdentity) {
  for (std::size_t n : {8u, 15u, 64u, 100u}) {
    const cvec x = random_signal(n, 7 * n);
    const cvec y = ifft(fft(x));
    EXPECT_LT(max_error(x, y), 1e-10) << "n=" << n;
  }
}

TEST(Fft, LinearityProperty) {
  const cvec x = random_signal(24, 1);
  const cvec y = random_signal(24, 2);
  cvec sum(24);
  for (std::size_t i = 0; i < 24; ++i) sum[i] = 2.0 * x[i] + 3.0 * y[i];
  const cvec lhs = fft(sum);
  const cvec fx = fft(x);
  const cvec fy = fft(y);
  cvec rhs(24);
  for (std::size_t i = 0; i < 24; ++i) rhs[i] = 2.0 * fx[i] + 3.0 * fy[i];
  EXPECT_LT(max_error(lhs, rhs), 1e-10);
}

TEST(Fft, ParsevalTheorem) {
  const cvec x = random_signal(50, 99);
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  const cvec X = fft(x);
  double freq_energy = 0.0;
  for (const auto& v : X) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(x.size()), time_energy, 1e-9);
}

TEST(Fft, RealSignalHasConjugateSymmetry) {
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<double> x(40);
  for (auto& v : x) v = d(rng);
  const cvec X = fft_real(x);
  for (std::size_t k = 1; k < x.size(); ++k) {
    EXPECT_NEAR(std::abs(X[k] - std::conj(X[x.size() - k])), 0.0, 1e-10);
  }
}

}  // namespace
}  // namespace msbist::dsp
