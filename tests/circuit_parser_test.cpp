// Unit tests for the SPICE-deck netlist parser.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/dc.h"
#include "circuit/elements.h"
#include "circuit/parser.h"
#include "circuit/transient.h"

namespace msbist::circuit {
namespace {

TEST(SpiceValue, PlainNumbers) {
  EXPECT_DOUBLE_EQ(parse_spice_value("42"), 42.0);
  EXPECT_DOUBLE_EQ(parse_spice_value("-3.5"), -3.5);
  EXPECT_DOUBLE_EQ(parse_spice_value("1e-6"), 1e-6);
}

TEST(SpiceValue, EngineeringSuffixes) {
  EXPECT_DOUBLE_EQ(parse_spice_value("4.7k"), 4700.0);
  EXPECT_DOUBLE_EQ(parse_spice_value("10p"), 10e-12);
  EXPECT_DOUBLE_EQ(parse_spice_value("100n"), 100e-9);
  EXPECT_DOUBLE_EQ(parse_spice_value("2.5u"), 2.5e-6);
  EXPECT_DOUBLE_EQ(parse_spice_value("5m"), 5e-3);
  EXPECT_DOUBLE_EQ(parse_spice_value("1MEG"), 1e6);
  EXPECT_DOUBLE_EQ(parse_spice_value("2g"), 2e9);
  EXPECT_DOUBLE_EQ(parse_spice_value("3f"), 3e-15);
}

TEST(SpiceValue, UnitLettersTolerated) {
  EXPECT_DOUBLE_EQ(parse_spice_value("10pF"), 10e-12);
  EXPECT_DOUBLE_EQ(parse_spice_value("4.7kohm"), 4700.0);
}

TEST(SpiceValue, MalformedThrows) {
  EXPECT_THROW(parse_spice_value(""), std::invalid_argument);
  EXPECT_THROW(parse_spice_value("abc"), std::invalid_argument);
  EXPECT_THROW(parse_spice_value("1x"), std::invalid_argument);
}

TEST(Parser, VoltageDividerDeck) {
  Netlist n = parse_netlist(R"(
* a classic divider
V1 in 0 10
R1 in mid 1k
R2 mid 0 3k
.END
)");
  const DcResult op = dc_operating_point(n);
  EXPECT_NEAR(op.voltage("mid"), 7.5, 1e-6);
  EXPECT_NE(n.find("V1"), nullptr);
  EXPECT_NE(n.find("R2"), nullptr);
}

TEST(Parser, CommentsAndBlankLines) {
  Netlist n = parse_netlist(
      "\n* comment\nV1 a 0 1 ; trailing comment\n\nR1 a 0 1k\n");
  EXPECT_NEAR(dc_operating_point(n).voltage("a"), 1.0, 1e-9);
}

TEST(Parser, SineSourceCard) {
  Netlist n = parse_netlist("V1 in 0 SIN(2.5 1.0 50)\nR1 in 0 1k\n");
  auto* vs = dynamic_cast<VoltageSource*>(n.find("V1"));
  ASSERT_NE(vs, nullptr);
  EXPECT_NEAR(vs->level(0.0), 2.5, 1e-12);
  EXPECT_NEAR(vs->level(0.005), 3.5, 1e-9);  // quarter period of 50 Hz
}

TEST(Parser, PwlAndPulseCards) {
  Netlist n = parse_netlist(
      "V1 a 0 PWL(0 0 1m 5)\n"
      "V2 b 0 PULSE(0 5 0 1u 1u 10u 100u)\n"
      "R1 a 0 1k\nR2 b 0 1k\n");
  auto* v1 = dynamic_cast<VoltageSource*>(n.find("V1"));
  auto* v2 = dynamic_cast<VoltageSource*>(n.find("V2"));
  ASSERT_NE(v1, nullptr);
  ASSERT_NE(v2, nullptr);
  EXPECT_NEAR(v1->level(0.5e-3), 2.5, 1e-9);
  EXPECT_NEAR(v2->level(5e-6), 5.0, 1e-9);
  EXPECT_NEAR(v2->level(50e-6), 0.0, 1e-9);
}

TEST(Parser, CapacitorWithInitialCondition) {
  Netlist n = parse_netlist("C1 a 0 1u IC=3\nR1 a 0 1k\n");
  TransientOptions opts;
  opts.dt = 10e-6;
  opts.t_stop = 100e-6;
  opts.use_initial_conditions = true;
  const TransientResult res = transient(n, opts);
  EXPECT_NEAR(res.voltage("a").front(), 3.0, 0.05);
}

TEST(Parser, ControlledSources) {
  Netlist n = parse_netlist(
      "V1 in 0 0.5\n"
      "E1 out 0 in 0 10\n"
      "R1 out 0 10k\n");
  EXPECT_NEAR(dc_operating_point(n).voltage("out"), 5.0, 1e-9);
}

TEST(Parser, MosfetCardWithOptions) {
  Netlist n = parse_netlist(
      "Vdd vdd 0 5\n"
      "Vg g 0 2\n"
      "Rd vdd d 10k\n"
      "M1 d g 0 NMOS W/L=10 LAMBDA=0\n");
  // Same bias as the C++-built common-source test: vd = 5 - 1.2 = 3.8 V.
  EXPECT_NEAR(dc_operating_point(n).voltage("d"), 3.8, 0.01);
}

TEST(Parser, ClockedSwitchCard) {
  Netlist n = parse_netlist(
      "V1 in 0 2\n"
      "S1 in out CLOCK(1m 0.5m) RON=10 ROFF=1g\n"
      "C1 out 0 10n\n");
  TransientOptions opts;
  opts.dt = 1e-6;
  opts.t_stop = 0.9e-3;
  opts.use_initial_conditions = true;
  opts.method = Integration::kBackwardEuler;
  const TransientResult res = transient(n, opts);
  EXPECT_NEAR(res.voltage("out").back(), 2.0, 1e-2);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parse_netlist("V1 a 0 1\nR1 a 0\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, UnknownCardThrows) {
  EXPECT_THROW(parse_netlist("Q1 a b c 1k\n"), std::invalid_argument);
}

TEST(Parser, BadMosTypeThrows) {
  EXPECT_THROW(parse_netlist("M1 d g 0 JFET\n"), std::invalid_argument);
}

TEST(Parser, EndStopsParsing) {
  Netlist n = parse_netlist("V1 a 0 1\nR1 a 0 1k\n.END\ngarbage here\n");
  EXPECT_NEAR(dc_operating_point(n).voltage("a"), 1.0, 1e-9);
}

}  // namespace
}  // namespace msbist::circuit
