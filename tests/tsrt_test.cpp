// Unit tests for the transient-response testing engine (approach 1 and
// approach 2) and the example circuits.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/vec.h"
#include "faults/universe.h"
#include "tsrt/detector.h"
#include "tsrt/example_circuits.h"
#include "tsrt/impulse_compare.h"
#include "tsrt/transient_test.h"

namespace msbist::tsrt {
namespace {

TEST(Detector, IdenticalSignalsGiveZero) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(detection_percent(a, a), 0.0);
}

TEST(Detector, FullyDifferentGivesHundred) {
  const std::vector<double> a{1.0, 1.0, 1.0, 1.0};
  const std::vector<double> b{2.0, 2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(detection_percent(a, b), 100.0);
}

TEST(Detector, ToleranceScalesWithReference) {
  const std::vector<double> a{10.0, 0.0, 0.0, 0.0};
  std::vector<double> b = a;
  b[1] = 0.4;  // below 5 % of max|ref| = 0.5
  EXPECT_DOUBLE_EQ(detection_percent(a, b), 0.0);
  b[1] = 0.6;  // above
  EXPECT_DOUBLE_EQ(detection_percent(a, b), 25.0);
}

TEST(Detector, SizeMismatchThrows) {
  EXPECT_THROW(detection_percent({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(detection_percent({}, {}), std::invalid_argument);
}

TEST(Detector, IsDetectedThreshold) {
  EXPECT_TRUE(is_detected(5.0));
  EXPECT_FALSE(is_detected(4.9));
}

TEST(ExampleCircuits, TransistorCountsMatchPaper) {
  EXPECT_EQ(build_circuit(CircuitKind::kOp1Follower).transistor_count, 13);
  EXPECT_EQ(build_circuit(CircuitKind::kScIntegratorAlone).transistor_count, 15);
  EXPECT_EQ(build_circuit(CircuitKind::kScIntegratorComparator).transistor_count, 28);
}

TEST(ExampleCircuits, NodeMapsResolve) {
  for (auto kind : {CircuitKind::kOp1Follower, CircuitKind::kScIntegratorAlone,
                    CircuitKind::kScIntegratorComparator}) {
    ExampleCircuit c = build_circuit(kind);
    for (int node = 1; node <= 9; ++node) {
      EXPECT_NO_THROW(c.netlist.find_node(c.node_map(node)))
          << circuit_name(kind) << " node " << node;
    }
  }
}

TEST(ExampleCircuits, NamesAreDescriptive) {
  EXPECT_NE(circuit_name(CircuitKind::kOp1Follower).find("circuit 1"),
            std::string::npos);
  EXPECT_NE(circuit_name(CircuitKind::kScIntegratorComparator).find("circuit 2"),
            std::string::npos);
  EXPECT_NE(circuit_name(CircuitKind::kScIntegratorAlone).find("circuit 3"),
            std::string::npos);
}

TEST(TransientTest, GoldenOp1FollowerTracksStimulus) {
  const TsrtRun run =
      run_transient_test(CircuitKind::kOp1Follower, std::nullopt,
                         paper_options(CircuitKind::kOp1Follower));
  ASSERT_FALSE(run.response.empty());
  // A healthy follower's correlation signature peaks near 1 (unity gain).
  EXPECT_GT(dsp::max_abs(run.correlation), 0.7);
  // The response must visit both halves of the 0..5 V swing.
  EXPECT_GT(dsp::max(run.response), 3.5);
  EXPECT_LT(dsp::min(run.response), 1.5);
}

TEST(TransientTest, RunsAreDeterministic) {
  const TsrtOptions opts = paper_options(CircuitKind::kOp1Follower);
  const TsrtRun a = run_transient_test(CircuitKind::kOp1Follower, std::nullopt, opts);
  const TsrtRun b = run_transient_test(CircuitKind::kOp1Follower, std::nullopt, opts);
  EXPECT_EQ(a.response, b.response);
  EXPECT_EQ(a.correlation, b.correlation);
}

TEST(TransientTest, FaultFreeSelfComparisonIsClean) {
  const TsrtOptions opts = paper_options(CircuitKind::kOp1Follower);
  const TsrtRun a = run_transient_test(CircuitKind::kOp1Follower, std::nullopt, opts);
  const TsrtRun b = run_transient_test(CircuitKind::kOp1Follower, std::nullopt, opts);
  EXPECT_DOUBLE_EQ(correlation_detection_percent(a, b), 0.0);
}

TEST(TransientTest, StuckOutputIsDetected) {
  const TsrtOptions opts = paper_options(CircuitKind::kOp1Follower);
  const TsrtRun golden =
      run_transient_test(CircuitKind::kOp1Follower, std::nullopt, opts);
  const TsrtRun faulty = run_transient_test(
      CircuitKind::kOp1Follower, faults::FaultSpec::stuck_at(3, false), opts);
  EXPECT_GT(correlation_detection_percent(golden, faulty), 50.0);
}

TEST(TransientTest, AllCircuit1FaultsDetectedByCombinedSignature) {
  // Figure 4's headline: every faulty circuit shows "a significant number
  // of time instances when detection is likely".
  const TsrtOptions opts = paper_options(CircuitKind::kOp1Follower);
  const TsrtRun golden =
      run_transient_test(CircuitKind::kOp1Follower, std::nullopt, opts);
  for (const auto& f : faults::op1_fault_universe()) {
    const TsrtRun faulty = run_transient_test(CircuitKind::kOp1Follower, f, opts);
    EXPECT_GT(combined_detection_percent(golden, faulty), 30.0) << f.label;
  }
}

TEST(TransientTest, NoiseRobustness) {
  // The correlation signature survives measurement noise (the technique's
  // point): detection of a hard fault changes little at 40 dB SNR-ish
  // noise levels, and the fault-free self-comparison stays quiet.
  TsrtOptions noisy = paper_options(CircuitKind::kOp1Follower);
  noisy.noise_sigma = 0.05;  // 50 mV RMS on a 5 V swing
  noisy.noise_seed = 77;
  const TsrtRun golden_clean = run_transient_test(
      CircuitKind::kOp1Follower, std::nullopt, paper_options(CircuitKind::kOp1Follower));
  TsrtOptions noisy2 = noisy;
  noisy2.noise_seed = 78;
  const TsrtRun healthy_noisy =
      run_transient_test(CircuitKind::kOp1Follower, std::nullopt, noisy2);
  EXPECT_LT(correlation_detection_percent(golden_clean, healthy_noisy), 10.0);
  const TsrtRun faulty_noisy = run_transient_test(
      CircuitKind::kOp1Follower, faults::FaultSpec::stuck_at(7, true), noisy);
  EXPECT_GT(correlation_detection_percent(golden_clean, faulty_noisy), 50.0);
}

TEST(TransientTest, IddSignatureCatchesBiasFault) {
  // SA0 at the bias node barely moves the voltage signature of the
  // follower but blows the supply current — the dynamic-Idd channel
  // (paper refs [10, 11]) catches it.
  const TsrtOptions opts = paper_options(CircuitKind::kOp1Follower);
  const TsrtRun golden =
      run_transient_test(CircuitKind::kOp1Follower, std::nullopt, opts);
  const TsrtRun faulty = run_transient_test(
      CircuitKind::kOp1Follower, faults::FaultSpec::stuck_at(4, false), opts);
  EXPECT_GT(idd_detection_percent(golden, faulty), 90.0);
}

TEST(TransientTest, InvalidDtThrows) {
  TsrtOptions opts;
  opts.dt_override = 1.0;  // larger than the bit time
  EXPECT_THROW(run_transient_test(CircuitKind::kOp1Follower, std::nullopt, opts),
               std::invalid_argument);
}

// --- Approach 2: ARX / impulse-response comparison ---

TEST(Arx, RecoversKnownFirstOrderSystem) {
  // y[n+1] = 0.9 y[n] + 0.25 u[n] + 0.01, driven by a deterministic
  // pseudo-random input.
  std::vector<double> u(200), y(201, 0.0);
  unsigned state = 1;
  for (auto& v : u) {
    state = state * 1664525u + 1013904223u;
    v = (static_cast<double>(state >> 16 & 0xFFFF) / 65535.0) - 0.5;
  }
  for (std::size_t n = 0; n < u.size(); ++n) {
    y[n + 1] = 0.9 * y[n] + 0.25 * u[n] + 0.01;
  }
  y.pop_back();
  const ArxFit fit = fit_arx(u, y);
  EXPECT_NEAR(fit.a, 0.9, 1e-6);
  EXPECT_NEAR(fit.b, 0.25, 1e-6);
  EXPECT_NEAR(fit.c, 0.01, 1e-6);
  EXPECT_LT(fit.residual_rms, 1e-9);
}

TEST(Arx, ImpulseOfFitMatchesTheory) {
  ArxFit fit;
  fit.a = 0.5;
  fit.b = 2.0;
  const auto h = fit.impulse(5);
  EXPECT_NEAR(h[0], 0.0, 1e-12);
  EXPECT_NEAR(h[1], 2.0, 1e-12);
  EXPECT_NEAR(h[2], 1.0, 1e-12);
  EXPECT_NEAR(h[3], 0.5, 1e-12);
}

TEST(Arx, ValidationThrows) {
  EXPECT_THROW(fit_arx({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(fit_arx(std::vector<double>(10, 0.0), std::vector<double>(9, 0.0)),
               std::invalid_argument);
}

TEST(Arx, SamplePerCycle) {
  std::vector<double> w(100);
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = static_cast<double>(i);
  const auto s = sample_per_cycle(w, 1.0, 10.0);
  ASSERT_EQ(s.size(), 10u);
  EXPECT_DOUBLE_EQ(s[0], 9.0);
  EXPECT_DOUBLE_EQ(s[9], 99.0);
  EXPECT_THROW(sample_per_cycle(w, 0.0, 10.0), std::invalid_argument);
}

TEST(Arx, GoldenScIntegratorMatchesDesignEquation) {
  // The whole point of the paper's design equation: the transistor-level
  // SC integrator must fit H(z) = b z^-1/(1 - a z^-1) with b ~ -1/6.8
  // (inverting) and a near 1 (bounded by the test-config reset leak).
  const TsrtOptions opts = paper_options(CircuitKind::kScIntegratorAlone);
  const TsrtRun run =
      run_transient_test(CircuitKind::kScIntegratorAlone, std::nullopt, opts);
  const ArxFit fit =
      fit_sc_cycles(run.stimulus, run.response, run.dt, kScCycleSeconds, 2.5);
  EXPECT_NEAR(fit.b, -1.0 / 6.8, 0.01);
  EXPECT_GT(fit.a, 0.9);
  EXPECT_LT(fit.a, 1.0);
  EXPECT_LT(fit.residual_rms, 1e-3);
}

TEST(Arx, ScFaultsShiftTheFit) {
  const TsrtOptions opts = paper_options(CircuitKind::kScIntegratorAlone);
  const TsrtRun golden =
      run_transient_test(CircuitKind::kScIntegratorAlone, std::nullopt, opts);
  const ArxFit gfit =
      fit_sc_cycles(golden.stimulus, golden.response, golden.dt, kScCycleSeconds, 2.5);
  // A stuck op-amp internal node must destroy the integrator transfer.
  const TsrtRun faulty = run_transient_test(
      CircuitKind::kScIntegratorAlone, faults::FaultSpec::stuck_at(7, false), opts);
  const ArxFit ffit =
      fit_sc_cycles(faulty.stimulus, faulty.response, faulty.dt, kScCycleSeconds, 2.5);
  EXPECT_GT(impulse_detection_percent(gfit, ffit), 50.0);
}

}  // namespace
}  // namespace msbist::tsrt
