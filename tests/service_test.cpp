// Loopback tests of the msbistd service stack: real sockets against an
// ephemeral-port HttpServer fronting a JobManager, exercising the whole
// submit -> poll -> result lifecycle, cancellation, structured errors,
// per-job thread caps, metrics consistency, keep-alive connection
// reuse, bounded admission (429 + Retry-After), priority dispatch with
// anti-starvation aging, and the acceptance contract that a lockstep
// batch over the wire is bit-identical to the direct library call.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/job.h"
#include "core/json_value.h"
#include "core/outcome.h"
#include "production/batch.h"
#include "service/api.h"
#include "service/dispatch.h"
#include "service/http.h"
#include "service/job_manager.h"
#include "service/journal.h"

namespace {

using namespace msbist;
using core::JsonValue;
using core::parse_json;

/// One daemon-in-a-test: manager + listener on an ephemeral port, with
/// the same internal-response metrics wiring msbistd uses (so even
/// server-synthesized 400/413s land in manager.metrics()).
struct ServiceFixture {
  static service::HttpServer::Options http_options() {
    service::HttpServer::Options o;
    o.bind_address = "127.0.0.1";
    o.port = 0;
    o.io_threads = 2;
    return o;
  }

  static service::HttpServer::Options with_observer(
      service::HttpServer::Options o, service::JobManager& m) {
    o.observe_internal_response = service::make_internal_response_observer(m);
    return o;
  }

  explicit ServiceFixture(service::JobManagerOptions mopts = {},
                          service::HttpServer::Options hopts = http_options())
      : manager(mopts),
        server(with_observer(std::move(hopts), manager),
               service::make_api_handler(manager)) {}

  service::HttpResponse request(const std::string& method,
                                const std::string& target,
                                const std::string& body = "") {
    return service::http_request(server.port(), method, target, body);
  }

  /// Poll GET /jobs/{id} until the state is terminal (or 10 s elapse).
  JsonValue await_terminal(std::uint64_t id) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      const auto resp = request("GET", "/jobs/" + std::to_string(id));
      EXPECT_EQ(resp.status, 200);
      JsonValue doc = parse_json(resp.body);
      const std::string state = doc.find("state")->as_string();
      if (state != "queued" && state != "running") return doc;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ADD_FAILURE() << "job " << id << " never reached a terminal state";
    return JsonValue();
  }

  std::uint64_t submit(const std::string& body, int expect_status = 202) {
    const auto resp = request("POST", "/jobs", body);
    EXPECT_EQ(resp.status, expect_status) << resp.body;
    const JsonValue doc = parse_json(resp.body);
    EXPECT_EQ(doc.find("kind")->as_string(), "job_accepted");
    return doc.find("id")->as_u64();
  }

  /// Poll GET /jobs/{id} until it reports `state` (10 s deadline).
  void await_state(std::uint64_t id, const std::string& state) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      const JsonValue doc =
          parse_json(request("GET", "/jobs/" + std::to_string(id)).body);
      if (doc.find("state")->as_string() == state) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ADD_FAILURE() << "job " << id << " never reached state " << state;
  }

  /// Submit a long serial full-spec batch and wait until it occupies a
  /// worker slot — the standard way these tests saturate a 1-worker
  /// manager so later submissions stay queued. Cancel it when done.
  std::uint64_t submit_blocker() {
    const std::uint64_t id = submit(
        R"({"kind":"batch","device_count":2000,"batch_seed":5,)"
        R"("full_spec":true,"threads":1,"label":"blocker"})");
    await_state(id, "running");
    return id;
  }

  service::JobManager manager;
  service::HttpServer server;
};

/// Send raw bytes to the server and collect everything it answers until
/// it closes the connection — for abuse cases no well-formed client can
/// produce (unparseable request lines, oversized bodies).
std::string raw_exchange(std::uint16_t port, const std::string& wire) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  EXPECT_EQ(::send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(Service, SubmitPollResultHappyPath) {
  ServiceFixture fx;
  const std::uint64_t id = fx.submit(
      R"({"kind":"batch","device_count":3,"batch_seed":7,)"
      R"("tiers":["digital"],"threads":1,"label":"happy"})");

  const JsonValue status = fx.await_terminal(id);
  EXPECT_EQ(status.find("kind")->as_string(), "job_status");
  EXPECT_EQ(status.find("schema_version")->as_u64(), core::kSchemaVersion);
  EXPECT_EQ(status.find("state")->as_string(), "succeeded");
  EXPECT_EQ(status.find("request")->find("label")->as_string(), "happy");
  EXPECT_EQ(status.find("progress")->find("done")->as_u64(), 3u);
  EXPECT_EQ(status.find("progress")->find("total")->as_u64(), 3u);

  const auto result = fx.request("GET", "/jobs/" + std::to_string(id) + "/result");
  ASSERT_EQ(result.status, 200) << result.body;
  const JsonValue doc = parse_json(result.body);
  EXPECT_EQ(doc.find("kind")->as_string(), "job_result");
  EXPECT_EQ(doc.find("report_kind")->as_string(), "batch_report");
  const JsonValue* report = doc.find("report");
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->find("kind")->as_string(), "batch_report");
  EXPECT_EQ(report->find("schema_version")->as_u64(), core::kSchemaVersion);
  EXPECT_EQ(report->find("device_count")->as_u64(), 3u);
  EXPECT_EQ(report->find("devices")->items().size(), 3u);
}

TEST(Service, ResultBeforeTerminalIs409) {
  ServiceFixture fx;
  const std::uint64_t id = fx.submit(
      R"({"kind":"batch","device_count":200,"batch_seed":3,)"
      R"("full_spec":true,"threads":1})");
  // Immediately asking for the result races the job, but a 200 is only
  // possible if it already finished; otherwise the contract is 409.
  const auto early = fx.request("GET", "/jobs/" + std::to_string(id) + "/result");
  if (early.status != 200) {
    EXPECT_EQ(early.status, 409);
    const JsonValue doc = parse_json(early.body);
    EXPECT_EQ(doc.find("kind")->as_string(), "error");
    EXPECT_EQ(doc.find("failure")->find("code")->as_string(), "bad_input");
  }
  fx.request("POST", "/jobs/" + std::to_string(id) + "/cancel");
  fx.await_terminal(id);
}

TEST(Service, CancellationMidJob) {
  ServiceFixture fx;
  // A long serial batch: 400 dies under the full-spec plan. Cancel as
  // soon as progress shows the engine is inside the lot.
  const std::uint64_t id = fx.submit(
      R"({"kind":"batch","device_count":400,"batch_seed":11,)"
      R"("full_spec":true,"threads":1})");

  bool saw_progress = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    const JsonValue doc =
        parse_json(fx.request("GET", "/jobs/" + std::to_string(id)).body);
    const std::string state = doc.find("state")->as_string();
    if (state == "running" && doc.find("progress")->find("done")->as_u64() > 0) {
      saw_progress = true;
      break;
    }
    if (state != "queued" && state != "running") break;  // finished already
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  const auto cancel =
      fx.request("POST", "/jobs/" + std::to_string(id) + "/cancel");
  const JsonValue done = fx.await_terminal(id);
  if (saw_progress && cancel.status == 200) {
    EXPECT_EQ(done.find("state")->as_string(), "cancelled");
    // A cancelled job serves no report.
    const auto result =
        fx.request("GET", "/jobs/" + std::to_string(id) + "/result");
    EXPECT_EQ(result.status, 200);
    const JsonValue rdoc = parse_json(result.body);
    EXPECT_EQ(rdoc.find("state")->as_string(), "cancelled");
    EXPECT_EQ(rdoc.find("report"), nullptr);
    // Cancelling again is a 409: the job is already terminal.
    EXPECT_EQ(
        fx.request("POST", "/jobs/" + std::to_string(id) + "/cancel").status,
        409);
  }
}

TEST(Service, MalformedRequestsAre400WithStructuredFailure) {
  ServiceFixture fx;

  const auto expect_bad = [&fx](const std::string& body) {
    const auto resp = fx.request("POST", "/jobs", body);
    EXPECT_EQ(resp.status, 400) << body << " -> " << resp.body;
    const JsonValue doc = parse_json(resp.body);
    EXPECT_EQ(doc.find("kind")->as_string(), "error") << body;
    const JsonValue* failure = doc.find("failure");
    ASSERT_NE(failure, nullptr) << body;
    EXPECT_EQ(failure->find("code")->as_string(), "bad_input") << body;
    EXPECT_FALSE(failure->find("detail")->as_string().empty()) << body;
  };

  expect_bad("{not json");
  expect_bad(R"({"kind":"warp_drive"})");
  expect_bad(R"({"kind":"batch","bogus_field":1})");
  expect_bad(R"({"kind":"batch","tiers":["analog","nope"]})");
  expect_bad(R"({"kind":"batch","population":"never-registered"})");

  // Unknown routes and ids are structured too.
  EXPECT_EQ(fx.request("GET", "/jobs/999").status, 404);
  EXPECT_EQ(fx.request("GET", "/nope").status, 404);
  EXPECT_EQ(fx.request("PUT", "/jobs").status, 405);
}

TEST(Service, ConcurrentJobsWithDistinctThreadCaps) {
  service::JobManagerOptions two_workers;
  two_workers.workers = 2;
  ServiceFixture fx(two_workers);
  // Both jobs ask for four engine threads but carry different per-job
  // caps; the engine must fan out no wider than each job's own limit.
  const std::uint64_t one = fx.submit(
      R"({"kind":"batch","device_count":8,"batch_seed":21,"threads":4,)"
      R"("tiers":["digital"],"limits":{"max_threads":1}})");
  const std::uint64_t two = fx.submit(
      R"({"kind":"batch","device_count":8,"batch_seed":22,"threads":4,)"
      R"("tiers":["digital"],"limits":{"max_threads":2}})");

  const JsonValue s1 = fx.await_terminal(one);
  const JsonValue s2 = fx.await_terminal(two);
  EXPECT_EQ(s1.find("state")->as_string(), "succeeded");
  EXPECT_EQ(s2.find("state")->as_string(), "succeeded");

  const JsonValue r1 = parse_json(
      fx.request("GET", "/jobs/" + std::to_string(one) + "/result").body);
  const JsonValue r2 = parse_json(
      fx.request("GET", "/jobs/" + std::to_string(two) + "/result").body);
  EXPECT_EQ(r1.find("report")->find("threads_used")->as_u64(), 1u);
  EXPECT_EQ(r2.find("report")->find("threads_used")->as_u64(), 2u);
  // Same lot geometry, different seeds: both full reports.
  EXPECT_EQ(r1.find("report")->find("device_count")->as_u64(), 8u);
  EXPECT_EQ(r2.find("report")->find("device_count")->as_u64(), 8u);
}

TEST(Service, WallTimeoutYieldsTimedOutWithTimeoutFailure) {
  ServiceFixture fx;
  const std::uint64_t id = fx.submit(
      R"({"kind":"batch","device_count":2000,"batch_seed":5,"threads":1,)"
      R"("full_spec":true,"limits":{"wall_timeout_s":0.05}})");
  const JsonValue done = fx.await_terminal(id);
  EXPECT_EQ(done.find("state")->as_string(), "timed_out");
  EXPECT_EQ(done.find("failure")->find("code")->as_string(), "timeout");
}

TEST(Service, MetricsCountersAreConsistent) {
  ServiceFixture fx;
  const std::uint64_t ok = fx.submit(
      R"({"kind":"batch","device_count":2,"batch_seed":1,)"
      R"("tiers":["digital"],"threads":1})");
  fx.await_terminal(ok);
  fx.request("POST", "/jobs", "{broken");  // one 400
  fx.request("GET", "/jobs/424242");       // one 404

  // The job-side counters are bumped by the worker thread shortly after
  // the status flips to terminal; poll the scrape until they land.
  JsonValue m;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto resp = fx.request("GET", "/metrics");
    ASSERT_EQ(resp.status, 200);
    m = parse_json(resp.body);
    if (m.find("counters")->find("jobs_succeeded")->as_u64() == 1 &&
        m.find("histograms")->find("job_seconds")->find("count")->as_u64() ==
            1) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  EXPECT_EQ(m.find("kind")->as_string(), "service_metrics");
  const JsonValue* counters = m.find("counters");
  ASSERT_NE(counters, nullptr);
  const auto counter = [counters](const char* name) {
    return counters->find(name)->as_u64();
  };
  EXPECT_EQ(counter("jobs_submitted"), 1u);
  EXPECT_EQ(counter("jobs_succeeded"), 1u);
  EXPECT_EQ(counter("jobs_failed"), 0u);
  EXPECT_EQ(counter("jobs_cancelled"), 0u);
  EXPECT_GE(counter("http_responses_4xx"), 2u);
  EXPECT_GE(counter("http_responses_2xx"), 2u);  // submit + polls + scrapes
  // Every request is counted on entry, its response class on exit. The
  // scrape that produced this snapshot is the single in-flight request:
  // counted in the total, not yet in any response class.
  EXPECT_EQ(counter("http_requests_total"),
            counter("http_responses_2xx") + counter("http_responses_4xx") +
                counter("http_responses_5xx") + 1);

  const JsonValue* hist = m.find("histograms")->find("request_seconds");
  ASSERT_NE(hist, nullptr);
  // Same in-flight accounting for the latency histogram.
  EXPECT_EQ(hist->find("count")->as_u64() + 1,
            counter("http_requests_total"));
  EXPECT_EQ(m.find("histograms")->find("job_seconds")->find("count")->as_u64(),
            1u);
  EXPECT_EQ(m.find("gauges")->find("jobs_running")->as_u64(), 0u);
}

TEST(Service, PopulationRegistryOverTheWire) {
  ServiceFixture fx;
  const auto created = fx.request(
      "POST", "/populations",
      R"({"name":"lot-a","device_count":4,"batch_seed":99})");
  EXPECT_EQ(created.status, 201) << created.body;

  const JsonValue listed =
      parse_json(fx.request("GET", "/populations").body);
  ASSERT_EQ(listed.find("populations")->items().size(), 1u);
  EXPECT_EQ(listed.find("populations")->items()[0].find("name")->as_string(),
            "lot-a");
  EXPECT_EQ(
      listed.find("populations")->items()[0].find("device_count")->as_u64(),
      4u);

  const std::uint64_t id = fx.submit(
      R"({"kind":"lockstep_batch","population":"lot-a"})");
  const JsonValue done = fx.await_terminal(id);
  EXPECT_EQ(done.find("state")->as_string(), "succeeded");
  const JsonValue result = parse_json(
      fx.request("GET", "/jobs/" + std::to_string(id) + "/result").body);
  EXPECT_EQ(result.find("report")->find("device_count")->as_u64(), 4u);

  EXPECT_EQ(fx.request("POST", "/populations", R"({"name":""})").status, 400);
}

/// Strip the nondeterministic timing fields (wall clock, CPU seconds,
/// throughput) so two reports from different runs compare bit-identical
/// on everything the engines guarantee deterministic.
JsonValue strip_timing(JsonValue report) {
  report.erase("wall_seconds");
  report.erase("cpu_seconds");
  report.erase("devices_per_second");
  if (const JsonValue* devices = report.find("devices")) {
    JsonValue cleaned = JsonValue::array();
    for (JsonValue d : devices->items()) {
      d.erase("elapsed_seconds");
      cleaned.push_back(std::move(d));
    }
    report.set("devices", std::move(cleaned));
  }
  return report;
}

// The PR's acceptance contract: a 32-die lockstep batch submitted
// through POST /jobs returns a BatchReport payload bit-identical to
// production::run_batch_lockstep invoked directly with the same seed
// and plan.
TEST(Service, LockstepBatchOverWireMatchesDirectCall) {
  constexpr std::size_t kDies = 32;
  constexpr std::uint64_t kSeed = 424242;

  ServiceFixture fx;
  const std::uint64_t id = fx.submit(
      R"({"kind":"lockstep_batch","device_count":32,"batch_seed":424242})");
  const JsonValue done = fx.await_terminal(id);
  ASSERT_EQ(done.find("state")->as_string(), "succeeded");
  const JsonValue wire = parse_json(
      fx.request("GET", "/jobs/" + std::to_string(id) + "/result").body);

  const production::BatchReport direct = production::run_batch_lockstep(
      service::lockstep_screen_population(kDies, kSeed),
      service::lockstep_screen_plan());

  const JsonValue wire_report = strip_timing(*wire.find("report"));
  const JsonValue direct_report =
      strip_timing(parse_json(core::to_json(direct)));
  EXPECT_EQ(wire_report.dump(), direct_report.dump());
  EXPECT_EQ(wire_report, direct_report);
  EXPECT_EQ(wire_report.find("device_count")->as_u64(), kDies);
}

TEST(Service, DrainRejectsNewSubmissionsWith503) {
  ServiceFixture fx;
  fx.manager.drain(/*hard=*/true);
  const auto resp = fx.request(
      "POST", "/jobs", R"({"kind":"batch","device_count":1,"threads":1})");
  EXPECT_EQ(resp.status, 503);
  const JsonValue health = parse_json(fx.request("GET", "/healthz").body);
  EXPECT_TRUE(health.find("draining")->as_bool());
}

// ---------------------------------------------------------------------
// Keep-alive connection lifecycle.

TEST(KeepAlive, TwoRequestsOneSocket) {
  ServiceFixture fx;
  service::HttpClient client(fx.server.port());
  const auto first = client.request("GET", "/healthz");
  const auto second = client.request("GET", "/healthz");
  EXPECT_EQ(first.status, 200);
  EXPECT_EQ(second.status, 200);
  // One TCP connect served both requests.
  EXPECT_EQ(client.connects(), 1u);
  EXPECT_EQ(client.requests(), 2u);
  EXPECT_EQ(first.headers.at("connection"), "keep-alive");

  // The server saw the reuse too: this scrape rides a fresh connection,
  // so http_connections >= 2 but exactly one connection was ever reused.
  const JsonValue m = parse_json(fx.request("GET", "/metrics").body);
  const JsonValue* counters = m.find("counters");
  EXPECT_GE(counters->find("http_connections")->as_u64(), 2u);
  EXPECT_EQ(counters->find("reused_connections")->as_u64(), 1u);
  EXPECT_EQ(counters->find("keepalive_requests")->as_u64(), 1u);
}

TEST(KeepAlive, ConnectionCloseIsHonored) {
  ServiceFixture fx;
  service::HttpClient client(fx.server.port());
  const auto first =
      client.request("GET", "/healthz", "", /*close_connection=*/true);
  EXPECT_EQ(first.status, 200);
  EXPECT_EQ(first.headers.at("connection"), "close");
  const auto second = client.request("GET", "/healthz");
  EXPECT_EQ(second.status, 200);
  // Connection: close forced a reconnect for the second request.
  EXPECT_EQ(client.connects(), 2u);
}

TEST(KeepAlive, MaxRequestsPerConnectionCaps) {
  auto hopts = ServiceFixture::http_options();
  hopts.max_requests_per_connection = 2;
  ServiceFixture fx({}, hopts);
  service::HttpClient client(fx.server.port());
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(client.request("GET", "/healthz").status, 200);
  }
  // The server closes every connection after its second request, so six
  // requests need exactly three connects.
  EXPECT_EQ(client.connects(), 3u);
}

TEST(KeepAlive, InternalBadRequestIsCountedInMetrics) {
  ServiceFixture fx;
  // An unparseable request line never reaches the API handler: the
  // server synthesizes the 400 itself. The observe_internal_response
  // wiring must count it all the same.
  const std::string raw =
      raw_exchange(fx.server.port(), "THIS IS NOT HTTP\r\n\r\n");
  EXPECT_NE(raw.find("400"), std::string::npos);

  const JsonValue m = parse_json(fx.request("GET", "/metrics").body);
  const JsonValue* counters = m.find("counters");
  EXPECT_GE(counters->find("http_responses_4xx")->as_u64(), 1u);
  // The request-accounting invariant survives server-internal errors:
  // total == classes + the one in-flight scrape.
  EXPECT_EQ(counters->find("http_requests_total")->as_u64(),
            counters->find("http_responses_2xx")->as_u64() +
                counters->find("http_responses_4xx")->as_u64() +
                counters->find("http_responses_5xx")->as_u64() + 1);
  // And the latency histogram observed the internal 400 too.
  EXPECT_EQ(m.find("histograms")
                    ->find("request_seconds")
                    ->find("count")
                    ->as_u64() +
                1,
            counters->find("http_requests_total")->as_u64());
}

// ---------------------------------------------------------------------
// Bounded admission, priority dispatch, fairness accounting.

TEST(Admission, QueueFullYields429WithRetryAfter) {
  service::JobManagerOptions mopts;
  mopts.workers = 1;
  mopts.max_queue_depth = 1;
  mopts.retry_after_s = 7.0;
  ServiceFixture fx(mopts);

  const std::uint64_t blocker = fx.submit_blocker();
  // The single worker is busy; this one fills the whole queue...
  const std::uint64_t queued = fx.submit(
      R"({"kind":"batch","device_count":1,"tiers":["digital"],"threads":1})");
  EXPECT_EQ(fx.manager.queue_depth(), 1u);

  // ...so the next submission must bounce with a structured 429.
  const auto resp = fx.request(
      "POST", "/jobs",
      R"({"kind":"batch","device_count":1,"tiers":["digital"],"threads":1})");
  EXPECT_EQ(resp.status, 429) << resp.body;
  EXPECT_EQ(resp.headers.at("retry-after"), "7");
  const JsonValue doc = parse_json(resp.body);
  EXPECT_EQ(doc.find("kind")->as_string(), "error");
  EXPECT_EQ(doc.find("failure")->find("code")->as_string(), "overloaded");
  EXPECT_NE(doc.find("failure")->find("detail")->as_string().find("queue"),
            std::string::npos);

  const JsonValue m = parse_json(fx.request("GET", "/metrics").body);
  EXPECT_EQ(m.find("counters")->find("rejected_overload")->as_u64(), 1u);
  EXPECT_EQ(m.find("gauges")->find("queue_depth")->as_u64(), 1u);

  fx.request("POST", "/jobs/" + std::to_string(blocker) + "/cancel");
  fx.await_terminal(blocker);
  fx.await_terminal(queued);
}

TEST(Admission, PriorityOrderingUnderSaturation) {
  service::JobManagerOptions mopts;
  mopts.workers = 1;
  mopts.aging_seconds = 1000.0;  // isolate pure priority ordering
  ServiceFixture fx(mopts);

  const std::uint64_t blocker = fx.submit_blocker();
  const std::uint64_t low = fx.submit(
      R"({"kind":"batch","device_count":1,"tiers":["digital"],"threads":1,)"
      R"("priority":"low"})");
  const std::uint64_t high = fx.submit(
      R"({"kind":"batch","device_count":1,"tiers":["digital"],"threads":1,)"
      R"("priority":"high"})");
  const std::uint64_t normal = fx.submit(
      R"({"kind":"batch","device_count":1,"tiers":["digital"],"threads":1})");

  fx.request("POST", "/jobs/" + std::to_string(blocker) + "/cancel");
  fx.await_terminal(blocker);
  const JsonValue done_low = fx.await_terminal(low);
  const JsonValue done_high = fx.await_terminal(high);
  const JsonValue done_normal = fx.await_terminal(normal);

  // One worker drains the queue strictly by priority: high before
  // normal before low, regardless of submission order.
  const auto started = [](const JsonValue& doc) {
    return doc.find("times")->find("started_seconds")->as_double();
  };
  EXPECT_LT(started(done_high), started(done_normal));
  EXPECT_LT(started(done_normal), started(done_low));
}

TEST(Admission, AgingPromotesStarvedLowPriority) {
  service::JobManagerOptions mopts;
  mopts.workers = 1;
  mopts.aging_seconds = 0.05;
  ServiceFixture fx(mopts);

  const std::uint64_t blocker = fx.submit_blocker();
  const std::uint64_t low = fx.submit(
      R"({"kind":"batch","device_count":1,"tiers":["digital"],"threads":1,)"
      R"("priority":"low"})");
  // Let the low job age past 2 * aging_seconds: effective priority is
  // now high, so a just-submitted normal job must not overtake it.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const std::uint64_t normal = fx.submit(
      R"({"kind":"batch","device_count":1,"tiers":["digital"],"threads":1})");

  fx.request("POST", "/jobs/" + std::to_string(blocker) + "/cancel");
  fx.await_terminal(blocker);
  const JsonValue done_low = fx.await_terminal(low);
  const JsonValue done_normal = fx.await_terminal(normal);
  EXPECT_LT(done_low.find("times")->find("started_seconds")->as_double(),
            done_normal.find("times")->find("started_seconds")->as_double());
}

TEST(Admission, CancelStillQueuedJob) {
  service::JobManagerOptions mopts;
  mopts.workers = 1;
  ServiceFixture fx(mopts);

  const std::uint64_t blocker = fx.submit_blocker();
  const std::uint64_t queued = fx.submit(
      R"({"kind":"batch","device_count":1,"tiers":["digital"],"threads":1})");
  EXPECT_EQ(fx.manager.queue_depth(), 1u);

  // Cancelling a queued job is immediate: no slot ever ran it.
  EXPECT_EQ(
      fx.request("POST", "/jobs/" + std::to_string(queued) + "/cancel").status,
      200);
  const JsonValue doc =
      parse_json(fx.request("GET", "/jobs/" + std::to_string(queued)).body);
  EXPECT_EQ(doc.find("state")->as_string(), "cancelled");
  EXPECT_EQ(doc.find("times")->find("started_seconds"), nullptr);
  EXPECT_EQ(fx.manager.queue_depth(), 0u);

  fx.request("POST", "/jobs/" + std::to_string(blocker) + "/cancel");
  fx.await_terminal(blocker);
}

TEST(Admission, PerTagQueueShareAndAccounting) {
  service::JobManagerOptions mopts;
  mopts.workers = 1;
  mopts.max_queued_per_tag = 1;
  ServiceFixture fx(mopts);

  const std::uint64_t blocker = fx.submit_blocker();
  const std::uint64_t alice1 = fx.submit(
      R"({"kind":"batch","device_count":1,"tiers":["digital"],"threads":1,)"
      R"("client_tag":"alice"})");
  // alice already holds her full queue share; bob still fits.
  const auto rejected = fx.request(
      "POST", "/jobs",
      R"({"kind":"batch","device_count":1,"tiers":["digital"],"threads":1,)"
      R"("client_tag":"alice"})");
  EXPECT_EQ(rejected.status, 429) << rejected.body;
  EXPECT_NE(parse_json(rejected.body)
                .find("failure")
                ->find("detail")
                ->as_string()
                .find("alice"),
            std::string::npos);
  const std::uint64_t bob = fx.submit(
      R"({"kind":"batch","device_count":1,"tiers":["digital"],"threads":1,)"
      R"("client_tag":"bob"})");

  fx.request("POST", "/jobs/" + std::to_string(blocker) + "/cancel");
  fx.await_terminal(blocker);
  fx.await_terminal(alice1);
  fx.await_terminal(bob);

  const JsonValue m = parse_json(fx.request("GET", "/metrics").body);
  const JsonValue* clients = m.find("clients");
  ASSERT_NE(clients, nullptr);
  const JsonValue* alice = clients->find("alice");
  ASSERT_NE(alice, nullptr);
  EXPECT_EQ(alice->find("submitted")->as_u64(), 1u);
  EXPECT_EQ(alice->find("rejected")->as_u64(), 1u);
  EXPECT_EQ(alice->find("completed")->as_u64(), 1u);
  const JsonValue* bob_row = clients->find("bob");
  ASSERT_NE(bob_row, nullptr);
  EXPECT_EQ(bob_row->find("submitted")->as_u64(), 1u);
  EXPECT_EQ(bob_row->find("rejected")->as_u64(), 0u);
}

// --- Durability: idempotent submits, journal recovery over the wire ---

/// A fresh, empty state directory under the test temp root (leftover
/// segments from a previous run of the same test are removed).
std::string fresh_state_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/msbist_service_" + name;
  ::mkdir(dir.c_str(), 0777);
  if (DIR* d = ::opendir(dir.c_str())) {
    while (const dirent* e = ::readdir(d)) {
      const std::string entry = e->d_name;
      if (entry == "." || entry == "..") continue;
      ::unlink((dir + "/" + entry).c_str());
    }
    ::closedir(d);
  }
  return dir;
}

service::JobManagerOptions durable_options(const std::string& state_dir) {
  service::JobManagerOptions o;
  o.state_dir = state_dir;
  o.journal_fsync_every = 1;
  return o;
}

TEST(Durability, IdempotencyKeyDeduplicatesResubmits) {
  ServiceFixture fx;
  const std::string body =
      R"({"kind":"batch","device_count":2,"batch_seed":3,"tiers":["digital"],)"
      R"("threads":1,"idempotency_key":"lot-42-submit"})";
  const auto first = fx.request("POST", "/jobs", body);
  ASSERT_EQ(first.status, 202) << first.body;
  const std::uint64_t id = parse_json(first.body).find("id")->as_u64();

  // A client retry of the same submission (lost 202, crashed script)
  // answers 200 with the existing job instead of admitting a duplicate.
  const auto retry = fx.request("POST", "/jobs", body);
  EXPECT_EQ(retry.status, 200) << retry.body;
  const JsonValue doc = parse_json(retry.body);
  EXPECT_EQ(doc.find("id")->as_u64(), id);
  EXPECT_TRUE(doc.find("deduplicated")->as_bool());
  EXPECT_EQ(doc.find("state"), nullptr);

  // Still deduplicated after the job finishes — the key maps to the
  // retained job for as long as the job itself is queryable.
  fx.await_terminal(id);
  const auto late = fx.request("POST", "/jobs", body);
  EXPECT_EQ(late.status, 200) << late.body;
  EXPECT_EQ(parse_json(late.body).find("id")->as_u64(), id);

  // A different key is a different job.
  const std::uint64_t other = fx.submit(
      R"({"kind":"batch","device_count":2,"batch_seed":3,"tiers":["digital"],)"
      R"("threads":1,"idempotency_key":"lot-43-submit"})");
  EXPECT_NE(other, id);
  fx.await_terminal(other);

  const JsonValue m = parse_json(fx.request("GET", "/metrics").body);
  EXPECT_EQ(m.find("counters")->find("jobs_deduplicated")->as_u64(), 2u);
  EXPECT_EQ(m.find("counters")->find("jobs_submitted")->as_u64(), 2u);
}

TEST(Durability, ResultsSurviveCleanRestart) {
  const std::string dir = fresh_state_dir("clean_restart");
  std::uint64_t id = 0;
  std::string result_body;
  {
    ServiceFixture fx(durable_options(dir));
    id = fx.submit(
        R"({"kind":"batch","device_count":3,"batch_seed":11,)"
        R"("tiers":["digital"],"threads":1})");
    const JsonValue done = fx.await_terminal(id);
    ASSERT_EQ(done.find("state")->as_string(), "succeeded");
    result_body =
        fx.request("GET", "/jobs/" + std::to_string(id) + "/result").body;
    fx.manager.drain(/*hard=*/false);  // writes the clean-shutdown marker
  }
  {
    ServiceFixture fx(durable_options(dir));
    fx.manager.recover_jobs();
    // Clean shutdown: the result is queryable again, byte-identical to
    // the previous life's answer, with nothing to resume.
    const JsonValue health = parse_json(fx.request("GET", "/healthz").body);
    const JsonValue* recovery = health.find("recovery");
    ASSERT_NE(recovery, nullptr);
    EXPECT_TRUE(recovery->find("clean_shutdown")->as_bool());
    EXPECT_EQ(recovery->find("resumed_jobs")->as_u64(), 0u);
    EXPECT_EQ(recovery->find("recovered_jobs")->as_u64(), 1u);

    const auto resp =
        fx.request("GET", "/jobs/" + std::to_string(id) + "/result");
    ASSERT_EQ(resp.status, 200) << resp.body;
    EXPECT_EQ(resp.body, result_body);

    const JsonValue status =
        parse_json(fx.request("GET", "/jobs/" + std::to_string(id)).body);
    const JsonValue* marker = status.find("recovery");
    ASSERT_NE(marker, nullptr);
    EXPECT_TRUE(marker->find("recovered")->as_bool());
    // Restored terminal, not resumed: nothing came from a checkpoint.
    EXPECT_FALSE(marker->find("resumed_from_checkpoint")->as_bool());
  }
}

TEST(Durability, UncleanJournalRecoversResumesAndCompletes) {
  const std::string dir = fresh_state_dir("unclean_resume");
  const std::string body =
      R"({"kind":"batch","device_count":4,"batch_seed":7,)"
      R"("tiers":["digital"],"threads":1})";
  const core::JobRequest req = core::JobRequest::from_json_text(body);

  // Control: the same request executed uninterrupted, and the first two
  // units' checkpoints exactly as a journaling daemon would record them.
  const service::DispatchResult control = service::dispatch(req);
  std::map<std::size_t, std::string> checkpoints;
  service::DispatchHooks capture;
  capture.unit_complete = [&](std::size_t unit, std::size_t,
                              const std::string& cp) {
    if (unit < 2) checkpoints[unit] = cp;
  };
  service::dispatch(req, capture);
  ASSERT_EQ(checkpoints.size(), 2u);

  // Fabricate the crash: a journal holding the admission, the running
  // transition, and two checkpoints — and no clean-shutdown marker.
  {
    service::JournalOptions jo;
    jo.state_dir = dir;
    jo.fsync_every_records = 1;
    service::Journal journal(jo);
    journal.append_admit(1, core::to_json(req));
    journal.append_state(1, "running");
    for (const auto& [unit, cp] : checkpoints) {
      journal.append_checkpoint(1, unit, 4, cp);
    }
  }

  ServiceFixture fx(durable_options(dir));
  fx.manager.recover_jobs();

  const JsonValue done = fx.await_terminal(1);
  EXPECT_EQ(done.find("state")->as_string(), "succeeded");
  const JsonValue* marker = done.find("recovery");
  ASSERT_NE(marker, nullptr);
  EXPECT_TRUE(marker->find("recovered")->as_bool());
  EXPECT_TRUE(marker->find("resumed_from_checkpoint")->as_bool());
  EXPECT_EQ(marker->find("resumed_units")->as_u64(), 2u);

  // The resumed lot's report is identical to the uninterrupted control
  // on everything but wall-clock timing.
  const JsonValue result = parse_json(fx.request("GET", "/jobs/1/result").body);
  ASSERT_NE(result.find("report"), nullptr);
  EXPECT_EQ(strip_timing(*result.find("report")).dump(),
            strip_timing(parse_json(control.report_json)).dump());

  const JsonValue health = parse_json(fx.request("GET", "/healthz").body);
  const JsonValue* recovery = health.find("recovery");
  ASSERT_NE(recovery, nullptr);
  EXPECT_FALSE(recovery->find("clean_shutdown")->as_bool());
  EXPECT_EQ(recovery->find("recovered_jobs")->as_u64(), 1u);
  EXPECT_EQ(recovery->find("resumed_jobs")->as_u64(), 1u);

  JsonValue m;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    m = parse_json(fx.request("GET", "/metrics").body);
    if (m.find("counters")->find("units_resumed")->as_u64() == 2u) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const JsonValue* counters = m.find("counters");
  EXPECT_EQ(counters->find("jobs_recovered")->as_u64(), 1u);
  EXPECT_EQ(counters->find("jobs_resumed")->as_u64(), 1u);
  EXPECT_EQ(counters->find("units_resumed")->as_u64(), 2u);
  const JsonValue* gauges = m.find("gauges");
  EXPECT_GT(gauges->find("journal_bytes")->as_u64(), 0u);
  EXPECT_GE(gauges->find("journal_segments")->as_u64(), 1u);
}

TEST(Durability, RecoveredJobWithUnknownPopulationFailsOnce) {
  const std::string dir = fresh_state_dir("unknown_population");
  const core::JobRequest req = core::JobRequest::from_json_text(
      R"({"kind":"lockstep_batch","population":"gone-lot"})");
  {
    service::JournalOptions jo;
    jo.state_dir = dir;
    jo.fsync_every_records = 1;
    service::Journal journal(jo);
    journal.append_admit(1, core::to_json(req));
    journal.append_state(1, "running");
  }
  {
    ServiceFixture fx(durable_options(dir));
    fx.manager.recover_jobs();
    // The population registry of the new life doesn't know "gone-lot":
    // the job fails with a structured error instead of wedging recovery.
    const JsonValue done = fx.await_terminal(1);
    EXPECT_EQ(done.find("state")->as_string(), "failed");
    ASSERT_NE(done.find("failure"), nullptr);
  }
  {
    // And the failure was journaled: the next restart sees a terminal
    // job, not a third attempt.
    ServiceFixture fx(durable_options(dir));
    fx.manager.recover_jobs();
    const JsonValue health = parse_json(fx.request("GET", "/healthz").body);
    EXPECT_EQ(health.find("recovery")->find("resumed_jobs")->as_u64(), 0u);
    const JsonValue status = parse_json(fx.request("GET", "/jobs/1").body);
    EXPECT_EQ(status.find("state")->as_string(), "failed");
  }
}

}  // namespace
