// Unit tests for the MOS level-1 model and nonlinear DC/transient solves.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/dc.h"
#include "circuit/elements.h"
#include "circuit/mos.h"
#include "circuit/transient.h"

namespace msbist::circuit {
namespace {

constexpr double kVdd = 5.0;

TEST(MosModel, CutoffHasZeroCurrent) {
  const MosParams p = MosParams::nmos_5um();
  const auto op = mos_level1(p, MosType::kNmos, 0.5, 3.0);
  EXPECT_DOUBLE_EQ(op.id, 0.0);
  EXPECT_DOUBLE_EQ(op.gm, 0.0);
}

TEST(MosModel, SaturationSquareLaw) {
  MosParams p = MosParams::nmos_5um(1.0);
  p.lambda = 0.0;
  // vgs = 2 V, vt = 1 V, vds = 3 V (saturation): id = kp/2 * (1)^2.
  const auto op = mos_level1(p, MosType::kNmos, 2.0, 3.0);
  EXPECT_NEAR(op.id, 0.5 * p.kp, 1e-12);
  EXPECT_NEAR(op.gm, p.kp, 1e-12);
  EXPECT_NEAR(op.gds, 0.0, 1e-15);
}

TEST(MosModel, TriodeRegion) {
  MosParams p = MosParams::nmos_5um(1.0);
  p.lambda = 0.0;
  // vgs = 3 V, vds = 0.5 V: triode. id = kp ((vov) vds - vds^2/2).
  const auto op = mos_level1(p, MosType::kNmos, 3.0, 0.5);
  EXPECT_NEAR(op.id, p.kp * (2.0 * 0.5 - 0.125), 1e-12);
  // gds = kp (vov - vds) > 0 in triode.
  EXPECT_NEAR(op.gds, p.kp * (2.0 - 0.5), 1e-12);
}

TEST(MosModel, ContinuousAcrossTriodeSaturationBoundary) {
  const MosParams p = MosParams::nmos_5um(5.0);
  const double vgs = 2.5;
  const double vdsat = vgs - p.vt;
  const auto lo = mos_level1(p, MosType::kNmos, vgs, vdsat - 1e-9);
  const auto hi = mos_level1(p, MosType::kNmos, vgs, vdsat + 1e-9);
  EXPECT_NEAR(lo.id, hi.id, 1e-12);
  EXPECT_NEAR(lo.gm, hi.gm, 1e-9);
  EXPECT_NEAR(lo.gds, hi.gds, 1e-7);
}

TEST(MosModel, DrainSourceSymmetry) {
  // Swapping drain and source negates the current: id(vgs, vds) with the
  // terminals swapped equals -id evaluated in the swapped frame.
  const MosParams p = MosParams::nmos_5um(2.0);
  const auto fwd = mos_level1(p, MosType::kNmos, 3.0, 1.0);
  const auto rev = mos_level1(p, MosType::kNmos, 3.0 - 1.0, -1.0);
  EXPECT_NEAR(rev.id, -fwd.id, 1e-15);
}

TEST(MosModel, PmosMirrorsNmos) {
  const MosParams p = MosParams::pmos_5um(2.0);
  const auto pm = mos_level1(p, MosType::kPmos, -2.0, -3.0);
  const auto nm = mos_level1(p, MosType::kNmos, 2.0, 3.0);
  EXPECT_NEAR(pm.id, -nm.id, 1e-15);
  EXPECT_NEAR(pm.gm, nm.gm, 1e-15);
  EXPECT_NEAR(pm.gds, nm.gds, 1e-15);
}

TEST(MosModel, LambdaIncreasesSaturationCurrent) {
  MosParams p = MosParams::nmos_5um(1.0);
  p.lambda = 0.05;
  const auto a = mos_level1(p, MosType::kNmos, 2.0, 2.0);
  const auto b = mos_level1(p, MosType::kNmos, 2.0, 4.0);
  EXPECT_GT(b.id, a.id);
}

// NMOS common-source stage with resistive load: solvable by hand.
TEST(MosDc, CommonSourceOperatingPoint) {
  Netlist n;
  const NodeId vdd = n.node("vdd");
  const NodeId g = n.node("g");
  const NodeId d = n.node("d");
  n.add<VoltageSource>(vdd, kGround, kVdd);
  n.add<VoltageSource>(g, kGround, 2.0);
  n.add<Resistor>(vdd, d, 10e3);
  MosParams p = MosParams::nmos_5um(10.0);
  p.lambda = 0.0;
  n.add<Mosfet>(MosType::kNmos, d, g, kGround, p);
  const DcResult op = dc_operating_point(n);
  // Assume saturation: id = 0.5*24e-6*10*(1)^2 = 120 uA; vd = 5 - 1.2 = 3.8 V.
  EXPECT_NEAR(op.voltage("d"), 3.8, 0.01);
}

TEST(MosDc, DiodeConnectedNmos) {
  // Diode-connected NMOS fed by a current source: vgs solves
  // I = 0.5 beta (vgs - vt)^2.
  Netlist m;
  const NodeId vd = m.node("d");
  MosParams q = MosParams::nmos_5um(10.0);
  q.lambda = 0.0;
  m.add<CurrentSource>(kGround, vd, 120e-6);  // pushes 120 uA into the drain
  m.add<Mosfet>(MosType::kNmos, vd, vd, kGround, q);
  const DcResult op = dc_operating_point(m);
  // 120e-6 = 0.5 * 240e-6 * vov^2 -> vov = 1, vgs = 2.
  EXPECT_NEAR(op.voltage("d"), 2.0, 0.01);
}

TEST(MosDc, CmosInverterTransfersHighAndLow) {
  // Static CMOS inverter: in=0 -> out=VDD; in=VDD -> out=0.
  auto build = [](double vin) {
    Netlist n;
    const NodeId vdd = n.node("vdd");
    const NodeId in = n.node("in");
    const NodeId out = n.node("out");
    n.add<VoltageSource>(vdd, kGround, kVdd);
    n.add<VoltageSource>(in, kGround, vin);
    n.add<Mosfet>(MosType::kNmos, out, in, kGround, MosParams::nmos_5um(10.0));
    n.add<Mosfet>(MosType::kPmos, out, in, vdd, MosParams::pmos_5um(30.0));
    return dc_operating_point(n).voltage("out");
  };
  EXPECT_NEAR(build(0.0), kVdd, 0.02);
  EXPECT_NEAR(build(kVdd), 0.0, 0.02);
  // Mid-rail input lands between the rails (both devices on).
  const double mid = build(2.5);
  EXPECT_GT(mid, 0.5);
  EXPECT_LT(mid, 4.5);
}

TEST(MosDc, InverterTransferIsMonotonicDecreasing) {
  Netlist n;
  const NodeId vdd = n.node("vdd");
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  n.add<VoltageSource>(vdd, kGround, kVdd);
  auto* vin = n.add<VoltageSource>(in, kGround, 0.0);
  n.add<Mosfet>(MosType::kNmos, out, in, kGround, MosParams::nmos_5um(10.0));
  n.add<Mosfet>(MosType::kPmos, out, in, vdd, MosParams::pmos_5um(30.0));
  std::vector<double> sweep;
  for (int i = 0; i <= 50; ++i) sweep.push_back(kVdd * i / 50.0);
  const auto sweep_result = dc_sweep(
      n, sweep, [&](Netlist&, double v) { vin->set_dc(v); }, "out");
  ASSERT_TRUE(sweep_result.complete());
  const std::vector<double>& vout = sweep_result.values;
  for (std::size_t i = 1; i < vout.size(); ++i) {
    EXPECT_LE(vout[i], vout[i - 1] + 1e-6) << "i=" << i;
  }
}

TEST(MosDc, NmosCurrentMirrorCopies) {
  Netlist n;
  const NodeId vdd = n.node("vdd");
  const NodeId ref = n.node("ref");
  const NodeId out = n.node("out");
  n.add<VoltageSource>(vdd, kGround, kVdd);
  // 100 uA into the diode-connected reference.
  n.add<CurrentSource>(vdd, ref, 100e-6);
  MosParams p = MosParams::nmos_5um(10.0);
  p.lambda = 0.0;
  n.add<Mosfet>(MosType::kNmos, ref, ref, kGround, p);
  auto* m2 = n.add<Mosfet>(MosType::kNmos, out, ref, kGround, p);
  n.add<Resistor>(vdd, out, 10e3);
  const DcResult op = dc_operating_point(n);
  EXPECT_NEAR(m2->drain_current(op.raw()), 100e-6, 2e-6);
  EXPECT_NEAR(op.voltage("out"), kVdd - 1.0, 0.05);
}

TEST(MosTransient, InverterSwitchingDelayWithLoadCap) {
  // An inverter driving a load capacitor slews between rails when the
  // input steps; checks the nonlinear transient path end to end.
  Netlist n;
  const NodeId vdd = n.node("vdd");
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  n.add<VoltageSource>(vdd, kGround, kVdd);
  n.add<VoltageSource>(in, kGround,
                       std::make_shared<PwlWave>(std::vector<std::pair<double, double>>{
                           {0.0, 0.0}, {1e-6, 0.0}, {1.1e-6, 5.0}}));
  n.add<Mosfet>(MosType::kNmos, out, in, kGround, MosParams::nmos_5um(10.0));
  n.add<Mosfet>(MosType::kPmos, out, in, vdd, MosParams::pmos_5um(30.0));
  n.add<Capacitor>(out, kGround, 10e-12);
  TransientOptions opts;
  opts.dt = 20e-9;
  opts.t_stop = 10e-6;
  const TransientResult res = transient(n, opts);
  const auto& v = res.voltage("out");
  EXPECT_NEAR(v.front(), kVdd, 0.05);  // input low -> output high
  EXPECT_NEAR(v.back(), 0.0, 0.05);    // input high -> output discharged
}

}  // namespace
}  // namespace msbist::circuit
