// core::JsonWriter and the unified Outcome/to_json report contract: exact
// serialization, escaping, misuse detection, and a python3 round-trip
// fixture over every migrated report type.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>

#include "adc/metrics.h"
#include "analysis/diagnostic.h"
#include "analysis/testability.h"
#include "bist/controller.h"
#include "circuit/dc.h"
#include "core/device.h"
#include "core/job.h"
#include "core/json_value.h"
#include "core/outcome.h"
#include "faults/campaign.h"
#include "faults/collapse.h"
#include "production/batch.h"

namespace {

using namespace msbist;

// The contract is a compile-time concept: every migrated report type
// must satisfy it.
static_assert(core::Serializable<core::Outcome>);
static_assert(core::Serializable<bist::AnalogTestResult>);
static_assert(core::Serializable<bist::RampTestResult>);
static_assert(core::Serializable<bist::DigitalTestResult>);
static_assert(core::Serializable<bist::CompressedTestResult>);
static_assert(core::Serializable<bist::BistReport>);
static_assert(core::Serializable<faults::FaultResult>);
static_assert(core::Serializable<faults::CampaignReport>);
static_assert(core::Serializable<adc::AdcMetrics>);
static_assert(core::Serializable<analysis::Diagnostic>);
static_assert(core::Serializable<analysis::Report>);
static_assert(core::Serializable<production::ParamStats>);
static_assert(core::Serializable<production::DeviceOutcome>);
static_assert(core::Serializable<production::BatchReport>);
static_assert(core::Serializable<analysis::TestabilityReport>);
static_assert(core::Serializable<faults::CollapsedUniverse>);
static_assert(core::Serializable<circuit::DcSweepResult>);
static_assert(core::Serializable<core::JobRequest>);

TEST(JsonWriter, FlatObject) {
  core::JsonWriter w;
  w.begin_object()
      .member("name", "adc")
      .member("pass", true)
      .member("count", 3)
      .member("lsb", 0.25)
      .end_object();
  EXPECT_EQ(w.str(), R"({"name":"adc","pass":true,"count":3,"lsb":0.25})");
}

TEST(JsonWriter, NestedArraysAndObjects) {
  core::JsonWriter w;
  w.begin_object().key("rows").begin_array();
  w.begin_object().member("i", 1).end_object();
  w.begin_object().member("i", 2).end_object();
  w.value(7);
  w.end_array().member("done", false).end_object();
  EXPECT_EQ(w.str(), R"({"rows":[{"i":1},{"i":2},7],"done":false})");
}

TEST(JsonWriter, EscapesQuotesBackslashesAndControls) {
  core::JsonWriter w;
  w.begin_object().member("s", "a\"b\\c\nd\te\x01" "f").end_object();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\\u0001f\"}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  core::JsonWriter w;
  w.begin_array()
      .value(std::numeric_limits<double>::quiet_NaN())
      .value(std::numeric_limits<double>::infinity())
      .value(-std::numeric_limits<double>::infinity())
      .value(1.5)
      .end_array();
  EXPECT_EQ(w.str(), "[null,null,null,1.5]");
}

TEST(JsonWriter, ShortestRoundTripNumbers) {
  core::JsonWriter w;
  w.begin_array().value(0.1).value(1e-9).value(-3.0).end_array();
  EXPECT_EQ(w.str(), "[0.1,1e-09,-3]");
}

TEST(JsonWriter, MisuseThrows) {
  {
    core::JsonWriter w;
    EXPECT_THROW(w.key("x"), std::logic_error);  // key outside object
  }
  {
    core::JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), std::logic_error);  // mismatched close
  }
  {
    core::JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.str(), std::logic_error);  // unclosed container
  }
}

TEST(UnifiedOutcome, CombineSemantics) {
  core::Outcome a = core::Outcome::ok("first");
  a &= core::Outcome::ok("second");
  EXPECT_TRUE(a.pass);
  EXPECT_EQ(a.detail, "first; second");
  a &= core::Outcome::fail("broken");
  EXPECT_FALSE(a.pass);
  EXPECT_TRUE(static_cast<bool>(core::Outcome::ok()));
  EXPECT_FALSE(static_cast<bool>(core::Outcome::fail("x")));
}

TEST(UnifiedOutcome, MigratedReportsExposeOutcome) {
  core::Device die = core::Device::fabricate(1996);
  const bist::BistReport bist_rep = die.run_bist();
  EXPECT_EQ(bist_rep.outcome().pass, bist_rep.pass);

  analysis::Report erc;
  EXPECT_TRUE(erc.outcome().pass);
  erc.add({analysis::Severity::kError, "dc-path", "floating", "n1", "", ""});
  EXPECT_FALSE(erc.outcome().pass);

  adc::AdcMetrics metrics;
  metrics.offset_lsb = 99.0;
  EXPECT_FALSE(metrics.outcome().pass);
  metrics.offset_lsb = 0.0;
  EXPECT_TRUE(metrics.outcome().pass);

  faults::CampaignReport camp;
  camp.results.resize(2);
  camp.detected_count = 1;
  EXPECT_FALSE(camp.outcome().pass);
  camp.detected_count = 2;
  EXPECT_TRUE(camp.outcome().pass);
}

TEST(FailureJson, AllFieldsSerializeWithSnakeCaseCode) {
  core::Failure f;
  f.code = core::ErrorCode::kNumericOverflow;
  f.analysis = "transient";
  f.has_time = true;
  f.time_s = 2.5e-3;
  f.has_sweep_value = true;
  f.sweep_value = 1.25;
  f.iterations = 3;
  f.worst_node = "out";
  f.worst_update = std::numeric_limits<double>::infinity();
  f.detail = "poisoned update";

  const std::string json = core::to_json(f);
  EXPECT_NE(json.find("\"code\":\"numeric_overflow\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"analysis\":\"transient\""), std::string::npos);
  EXPECT_NE(json.find("\"time_s\":0.0025"), std::string::npos);
  EXPECT_NE(json.find("\"sweep_value\":1.25"), std::string::npos);
  EXPECT_NE(json.find("\"iterations\":3"), std::string::npos);
  EXPECT_NE(json.find("\"worst_node\":\"out\""), std::string::npos);
  // Non-finite numerics degrade to null per the writer's contract.
  EXPECT_NE(json.find("\"worst_update\":null"), std::string::npos);
  // The human-readable message threads the same facts together.
  EXPECT_NE(f.message().find("numeric_overflow"), std::string::npos);
  EXPECT_NE(f.message().find("out"), std::string::npos);
}

// The wire-schema envelope: every top-level report document leads with
// "kind" then "schema_version" so clients can route a document before
// reading any payload field.
TEST(ReportEnvelope, EveryReportLeadsWithKindAndSchemaVersion) {
  const auto expect_envelope = [](const std::string& json,
                                  const std::string& kind) {
    const core::JsonValue doc = core::parse_json(json);
    ASSERT_TRUE(doc.is_object()) << json;
    ASSERT_GE(doc.members().size(), 2u) << json;
    EXPECT_EQ(doc.members()[0].first, "kind") << json;
    EXPECT_EQ(doc.members()[1].first, "schema_version") << json;
    EXPECT_EQ(doc.find("kind")->as_string(), kind);
    EXPECT_EQ(doc.find("schema_version")->as_u64(), core::kSchemaVersion);
  };

  expect_envelope(core::to_json(bist::BistReport{}), "bist_report");
  expect_envelope(core::to_json(faults::CampaignReport{}), "campaign_report");
  expect_envelope(core::to_json(adc::AdcMetrics{}), "adc_metrics");
  expect_envelope(core::to_json(analysis::Report{}), "erc_report");
  expect_envelope(core::to_json(analysis::TestabilityReport{}),
                  "testability_report");
  expect_envelope(core::to_json(faults::CollapsedUniverse{}),
                  "collapsed_universe");
  expect_envelope(core::to_json(circuit::DcSweepResult{}), "dc_sweep");

  const production::BatchReport batch = production::run_batch(
      production::paper_population(), production::TestPlan::bist_only(), 2);
  expect_envelope(core::to_json(batch), "batch_report");

  // The request envelope leads with the same pair; its kind is the job
  // kind rather than a report name.
  expect_envelope(core::to_json(core::JobRequest{}), "batch");
}

// Round-trip fixture: every migrated report type rendered into one JSON
// document and fed through `python3 -m json.tool`, the same validator
// the CI smoke step uses.
TEST(UnifiedOutcome, JsonRoundTripThroughPython) {
  if (std::system("python3 -c 'pass' > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "python3 not available";
  }

  core::Device die = core::Device::fabricate(1996);
  const bist::BistReport bist_rep = die.run_bist();
  const adc::AdcMetrics metrics = die.characterize();

  analysis::Report erc;
  erc.add({analysis::Severity::kWarning, "floating-node", "node \"x\" floats",
           "x", "R1", "tie it down"});

  faults::CampaignReport camp;
  faults::FaultResult fr;
  fr.fault = faults::FaultSpec::stuck_at(4, true);
  fr.detected = true;
  fr.score = 0.75;
  camp.results.push_back(fr);
  camp.detected_count = 1;

  const production::BatchReport batch = production::run_batch(
      production::paper_population(), production::TestPlan::bist_only(), 2);

  core::JsonWriter w;
  w.begin_object();
  w.key("outcome");
  core::Outcome::fail("demo \"quoted\" detail\n").to_json(w);
  w.key("bist");
  bist_rep.to_json(w);
  w.key("metrics");
  metrics.to_json(w);
  w.key("erc");
  erc.to_json(w);
  w.key("campaign");
  camp.to_json(w);
  w.key("batch");
  batch.to_json(w);
  core::Failure fail_rec;
  fail_rec.code = core::ErrorCode::kSingularMatrix;
  fail_rec.analysis = "dc_sweep";
  fail_rec.has_sweep_value = true;
  fail_rec.sweep_value = 0.5;
  fail_rec.detail = "rescue ladder exhausted";
  w.key("failure");
  fail_rec.to_json(w);
  w.end_object();

  const std::string path = testing::TempDir() + "/msbist_reports.json";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    out << w.str();
  }
  const std::string cmd =
      "python3 -m json.tool < '" + path + "' > /dev/null 2>&1";
  EXPECT_EQ(std::system(cmd.c_str()), 0)
      << "python3 -m json.tool rejected the document";
  std::remove(path.c_str());
}

}  // namespace
