// Production batch-test engine: determinism across thread counts, yield
// math on hand-built populations, seeding, stats, and the tier-enum API.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>
#include <string>

#include "core/device.h"
#include "production/batch.h"

namespace {

using namespace msbist;

production::TestPlan quick_full_plan() {
  production::TestPlan plan = production::TestPlan::full();
  plan.fault_spot_check = false;  // keep the test fast; spot check has its own
  return plan;
}

TEST(ProductionBatch, DeviceSeedsAreStableNonzeroAndDistinct) {
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < 1000; ++i) {
    const std::uint64_t s = production::device_seed(1995, i);
    EXPECT_NE(s, 0u);
    EXPECT_EQ(s, production::device_seed(1995, i));
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 1000u);  // no collisions across the batch
  EXPECT_NE(production::device_seed(1995, 0), production::device_seed(1996, 0));
}

TEST(ProductionBatch, BitIdenticalReportAcrossThreadCounts) {
  production::BatchConfig cfg;
  cfg.device_count = 8;
  cfg.batch_seed = 42;
  cfg.plan = quick_full_plan();

  cfg.threads = 1;
  const production::BatchReport one = production::run_batch(cfg);
  cfg.threads = 2;
  const production::BatchReport two = production::run_batch(cfg);
  cfg.threads = 8;
  const production::BatchReport eight = production::run_batch(cfg);

  EXPECT_EQ(one.canonical_outcomes(), two.canonical_outcomes());
  EXPECT_EQ(one.canonical_outcomes(), eight.canonical_outcomes());
  EXPECT_EQ(two.threads_used, 2u);
  EXPECT_EQ(eight.threads_used, 8u);

  // Spot-check bit-identity of the underlying doubles, not just the text.
  ASSERT_EQ(one.devices.size(), eight.devices.size());
  for (std::size_t i = 0; i < one.devices.size(); ++i) {
    EXPECT_EQ(one.devices[i].metrics.offset_lsb,
              eight.devices[i].metrics.offset_lsb);
    EXPECT_EQ(one.devices[i].metrics.max_abs_inl,
              eight.devices[i].metrics.max_abs_inl);
    EXPECT_EQ(one.devices[i].outcome.pass, eight.devices[i].outcome.pass);
  }
  EXPECT_EQ(one.offset_lsb.mean, eight.offset_lsb.mean);
  EXPECT_EQ(one.max_abs_dnl.p95, eight.max_abs_dnl.p95);
}

TEST(ProductionBatch, YieldMathOnHandBuiltPopulation) {
  const adc::DualSlopeAdcConfig healthy =
      adc::DualSlopeAdcConfig::characterized();

  adc::DualSlopeAdcConfig counter_fault = healthy;
  counter_fault.counter_faults.stuck_bit = 4;
  adc::DualSlopeAdcConfig control_fault = healthy;
  control_fault.control_faults.stuck_phase = digital::ConvPhase::kIntegrate;

  // Seeds 1996..1998 are dies of the paper lot, known to pass BIST.
  std::vector<production::DieSpec> pop;
  pop.push_back({1996, healthy, "good A"});
  pop.push_back({1997, healthy, "good B"});
  pop.push_back({1998, healthy, "good C"});
  pop.push_back({1996, counter_fault, "counter stuck"});
  pop.push_back({1996, control_fault, "control frozen"});

  const production::BatchReport rep =
      production::run_batch(pop, production::TestPlan::bist_only());

  EXPECT_EQ(rep.devices.size(), 5u);
  EXPECT_EQ(rep.passed, 3u);
  EXPECT_DOUBLE_EQ(rep.yield(), 0.6);
  EXPECT_FALSE(rep.outcome().pass);

  // The healthy dies fail no tier; each faulty die fails at least one.
  std::set<std::size_t> failing;
  for (const auto& per_tier : rep.tier_failures) {
    failing.insert(per_tier.begin(), per_tier.end());
  }
  EXPECT_EQ(failing, (std::set<std::size_t>{3, 4}));
  EXPECT_TRUE(rep.devices[0].failed_tiers.empty());
  EXPECT_FALSE(rep.devices[3].failed_tiers.empty());
  EXPECT_FALSE(rep.devices[4].failed_tiers.empty());
  // The stuck counter bit corrupts codes -> the compressed signature
  // catches it (the paper's fault-to-symptom map).
  EXPECT_FALSE(rep.devices[3].bist.compressed.pass);
  // The frozen control FSM stops conversions -> the digital tier fails.
  EXPECT_FALSE(rep.devices[4].bist.digital.pass);
}

TEST(ProductionBatch, PaperPopulationPassesFullPlan) {
  const production::BatchReport rep = production::run_batch(
      production::paper_population(), production::TestPlan::full(), 2);
  EXPECT_EQ(rep.devices.size(), 10u);
  EXPECT_EQ(rep.passed, 10u) << rep.canonical_outcomes();
  EXPECT_TRUE(rep.outcome().pass);
  for (const production::DeviceOutcome& d : rep.devices) {
    EXPECT_TRUE(d.spot_check.pass()) << d.label;
    EXPECT_EQ(d.spot_check.injected, 6u);
    // The duplicate latch mask shares one clone and the two above-width
    // stuck bits never simulate: 6 injections cost 3 solves.
    EXPECT_EQ(d.spot_check.simulated, 3u);
    EXPECT_EQ(d.spot_check.undetectable, 2u);
  }
  // Distributions cover all ten dies.
  EXPECT_EQ(rep.offset_lsb.count, 10u);
  EXPECT_GT(rep.offset_lsb.sigma, 0.0);
}

TEST(ProductionBatch, CustomTestFnIsUsedAndThreadInvariant) {
  production::BatchConfig cfg;
  cfg.device_count = 17;
  cfg.batch_seed = 7;
  const auto pop = production::make_population(cfg);

  const production::DeviceTestFn fake =
      [](const production::DieSpec& spec,
         const production::TestPlan&) {
        production::DeviceOutcome out;
        out.seed = spec.seed;
        out.label = spec.label;
        out.outcome = (spec.seed % 2 == 0)
                          ? core::Outcome::ok("even seed")
                          : core::Outcome::fail("odd seed");
        return out;
      };

  const auto serial = production::run_batch(pop, {}, 1, fake);
  const auto parallel = production::run_batch(pop, {}, 4, fake);
  EXPECT_EQ(serial.canonical_outcomes(), parallel.canonical_outcomes());

  std::size_t expect_pass = 0;
  for (const auto& d : pop) {
    if (d.seed % 2 == 0) ++expect_pass;
  }
  EXPECT_EQ(serial.passed, expect_pass);
}

TEST(ProductionBatch, ThrowingTestFnDegradesDieWithoutAbortingBatch) {
  production::BatchConfig cfg;
  cfg.device_count = 6;
  cfg.batch_seed = 11;
  const auto pop = production::make_population(cfg);

  // Die index 2's tester hits a solver failure mid-procedure; die index
  // 4's tester dies on an untyped exception. Both must degrade to
  // structured failing outcomes, and the other four dies pass untouched.
  const production::DeviceTestFn chaos =
      [](const production::DieSpec& spec, const production::TestPlan&) {
        if (spec.label == "die 3") {
          core::Failure f;
          f.code = core::ErrorCode::kNonConvergent;
          f.analysis = "transient";
          f.detail = "rescue ladder exhausted";
          core::throw_failure(std::move(f));
        }
        if (spec.label == "die 5") throw std::runtime_error("socket jam");
        production::DeviceOutcome out;
        out.seed = spec.seed;
        out.label = spec.label;
        out.outcome = core::Outcome::ok("clean");
        return out;
      };

  const auto serial = production::run_batch(pop, {}, 1, chaos);
  const auto parallel = production::run_batch(pop, {}, 4, chaos);
  EXPECT_EQ(serial.canonical_outcomes(), parallel.canonical_outcomes());

  ASSERT_EQ(serial.devices.size(), 6u);
  EXPECT_EQ(serial.passed, 4u);
  EXPECT_EQ(serial.degraded_count, 2u);
  EXPECT_FALSE(serial.outcome().pass);
  EXPECT_NE(serial.summary().find("2 degraded"), std::string::npos)
      << serial.summary();

  const production::DeviceOutcome& solver_die = serial.devices[2];
  EXPECT_TRUE(solver_die.degraded);
  EXPECT_FALSE(solver_die.outcome.pass);
  ASSERT_EQ(solver_die.failures.size(), 1u);
  EXPECT_EQ(solver_die.failures[0].code, core::ErrorCode::kNonConvergent);

  const production::DeviceOutcome& untyped_die = serial.devices[4];
  EXPECT_TRUE(untyped_die.degraded);
  ASSERT_EQ(untyped_die.failures.size(), 1u);
  EXPECT_EQ(untyped_die.failures[0].code, core::ErrorCode::kInternal);
  EXPECT_NE(untyped_die.failures[0].detail.find("socket jam"),
            std::string::npos);

  const std::string json = core::to_json(serial);
  EXPECT_NE(json.find("\"degraded_count\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"non_convergent\""), std::string::npos);
}

TEST(ProductionBatch, EmptyPopulationIsWellFormed) {
  const production::BatchReport rep =
      production::run_batch({}, production::TestPlan::bist_only(), 4);
  EXPECT_TRUE(rep.devices.empty());
  EXPECT_EQ(rep.passed, 0u);
  EXPECT_DOUBLE_EQ(rep.yield(), 0.0);
  EXPECT_NO_THROW(core::to_json(rep));
}

TEST(ProductionStats, KnownSampleMoments) {
  const production::ParamStats s =
      production::compute_stats({4.0, 2.0, 1.0, 3.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_NEAR(s.sigma, std::sqrt(2.5), 1e-12);  // sample stddev of 1..5
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_DOUBLE_EQ(s.p05, 1.2);  // linear interpolation at 0.05 * 4 = 0.2
  EXPECT_DOUBLE_EQ(s.p95, 4.8);
}

TEST(ProductionStats, PercentileEdgeCases) {
  EXPECT_DOUBLE_EQ(production::percentile_sorted({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(production::percentile_sorted({7.0}, 0.9), 7.0);
  EXPECT_DOUBLE_EQ(production::percentile_sorted({1.0, 2.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(production::percentile_sorted({1.0, 2.0}, 1.0), 2.0);
  const production::ParamStats empty = production::compute_stats({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.sigma, 0.0);
}

TEST(ProductionTier, RunTierIsDeterministicAndFillsItsSlot) {
  const auto cfg = adc::DualSlopeAdcConfig::characterized();
  const bist::BistController ctrl = bist::BistController::typical();

  for (bist::Tier t : bist::kAllTiers) {
    adc::DualSlopeAdc first(cfg);
    adc::DualSlopeAdc second(cfg);
    bist::BistReport rep;
    const core::Outcome out = ctrl.run_tier(t, first, rep);
    // The report-free overload agrees with the slot-filling one.
    const core::Outcome again = ctrl.run_tier(t, second);
    EXPECT_EQ(out.pass, again.pass) << bist::to_string(t);
    EXPECT_EQ(out.detail, again.detail) << bist::to_string(t);
    EXPECT_EQ(rep.tier_pass(t), out.pass) << bist::to_string(t);
  }
}

TEST(ProductionTier, RunAllAggregatesTierOutcomes) {
  const auto cfg = adc::DualSlopeAdcConfig::characterized();
  const bist::BistController ctrl = bist::BistController::typical();

  adc::DualSlopeAdc whole(cfg);
  const bist::BistReport all = ctrl.run_all(whole);

  adc::DualSlopeAdc tiered(cfg);
  bist::BistReport manual;
  bool pass = true;
  for (bist::Tier t : bist::kAllTiers) {
    pass = ctrl.run_tier(t, tiered, manual).pass && pass;
  }
  manual.pass = pass;

  // Same conversion stream order -> bit-identical signatures and flags.
  EXPECT_EQ(all.pass, manual.pass);
  EXPECT_EQ(all.compressed.digital_signature,
            manual.compressed.digital_signature);
  EXPECT_EQ(all.digital.max_conversion_time_s,
            manual.digital.max_conversion_time_s);
  EXPECT_EQ(all.failed_tiers().size(), manual.failed_tiers().size());
  EXPECT_TRUE(all.outcome().pass);
}

TEST(ProductionTier, TierNamesAreStable) {
  EXPECT_STREQ(bist::to_string(bist::Tier::kAnalog), "analog");
  EXPECT_STREQ(bist::to_string(bist::Tier::kRamp), "ramp");
  EXPECT_STREQ(bist::to_string(bist::Tier::kDigital), "digital");
  EXPECT_STREQ(bist::to_string(bist::Tier::kCompressed), "compressed");
}

TEST(ProductionSpotCheck, CatchesInjectedMacroFaults) {
  production::TestPlan plan = production::TestPlan::bist_only();
  plan.fault_spot_check = true;
  production::DieSpec die;
  die.seed = 1996;
  die.config = adc::DualSlopeAdcConfig::characterized();
  die.label = "good";
  const production::DeviceOutcome out = production::test_device(die, plan);
  EXPECT_TRUE(out.spot_check_run);
  EXPECT_EQ(out.spot_check.injected, 6u);
  // 4 detectable injections (one pair is the same latch mask written two
  // ways); the above-width stuck bits are statically undetectable.
  EXPECT_EQ(out.spot_check.detected, 4u);
  EXPECT_EQ(out.spot_check.simulated, 3u);
  EXPECT_EQ(out.spot_check.undetectable, 2u);
  ASSERT_EQ(out.spot_check.undetectable_labels.size(), 2u);
  EXPECT_EQ(out.spot_check.undetectable_labels[0], "counter-stuck-bit12");
  EXPECT_EQ(out.spot_check.undetectable_labels[1], "latch-stuck-low-0xC00");
  EXPECT_TRUE(out.outcome.pass) << out.outcome.detail;
}

}  // namespace
