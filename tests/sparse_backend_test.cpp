// Integration tests for the sparse MNA backend: size-gated selection,
// dense-vs-sparse waveform agreement (the documented < 1e-9 relative
// gate — assembly is shared, only elimination order differs), symbolic
// and pivot reuse across Newton steps and re-binds, and the rescue
// ladder running unchanged on the sparse path.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "circuit/dc.h"
#include "circuit/elements.h"
#include "circuit/netlist.h"
#include "circuit/solver.h"
#include "circuit/transient.h"
#include "circuit/workspace.h"
#include "core/error.h"

namespace msbist::circuit {
namespace {

constexpr std::size_t kCells = 47;

/// Bus-fed RC macro array: stim + bus + out + kCells cell nodes + one
/// source branch = 51 MNA unknowns at kCells = 47 — comfortably past the
/// sparse auto-threshold, and the same topology family as the collapse
/// bench. Fully linear, so the fixed-dt transient matrix is constant.
void build_macro_array(Netlist& n) {
  const NodeId stim = n.node("stim");
  const NodeId bus = n.node("bus");
  const NodeId out = n.node("out");
  n.add<VoltageSource>(stim, kGround,
                       std::make_shared<SineWave>(2.5, 2.5, 50e3));
  n.name_last("VSTIM");
  n.add<Resistor>(stim, bus, 100.0);
  n.add<Resistor>(bus, out, 1e3);
  n.add<Resistor>(out, kGround, 10e3);
  n.add<Capacitor>(out, kGround, 10e-9);
  for (std::size_t i = 0; i < kCells; ++i) {
    const NodeId cell = n.node("cell" + std::to_string(i));
    n.add<Resistor>(bus, cell, 1e3 + 10.0 * static_cast<double>(i));
    n.add<Capacitor>(cell, kGround, 1e-9 + 1e-11 * static_cast<double>(i));
  }
}

TransientResult run_array(SolverBackend backend) {
  Netlist n;
  build_macro_array(n);
  TransientOptions opts;
  opts.dt = 100e-9;
  opts.t_stop = 20e-6;
  opts.newton.backend = backend;
  return transient(n, opts);
}

double max_rel_diff(const std::vector<double>& a, const std::vector<double>& b) {
  EXPECT_EQ(a.size(), b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    const double scale = std::max({std::abs(a[i]), std::abs(b[i]), 1e-12});
    worst = std::max(worst, std::abs(a[i] - b[i]) / scale);
  }
  return worst;
}

TEST(SparseBackend, TransientMatchesDenseWithinDocumentedGate) {
  const TransientResult dense = run_array(SolverBackend::kDense);
  const TransientResult sparse = run_array(SolverBackend::kSparse);
  ASSERT_EQ(dense.time().size(), sparse.time().size());
  EXPECT_LT(max_rel_diff(dense.voltage("out"), sparse.voltage("out")), 1e-9);
  EXPECT_LT(max_rel_diff(dense.voltage("bus"), sparse.voltage("bus")), 1e-9);
  EXPECT_LT(max_rel_diff(dense.voltage("cell0"), sparse.voltage("cell0")),
            1e-9);
  EXPECT_LT(max_rel_diff(dense.current("VSTIM"), sparse.current("VSTIM")),
            1e-9);
  // kAuto resolves to sparse at this size: identical to the explicit
  // sparse run bit for bit (same backend, same code path).
  const TransientResult auto_run = run_array(SolverBackend::kAuto);
  EXPECT_EQ(auto_run.voltage("out"), sparse.voltage("out"));
}

TEST(SparseBackend, AutoSelectionIsSizeGated) {
  // Small circuit: kAuto stays dense.
  {
    Netlist n;
    const NodeId a = n.node("a");
    n.add<VoltageSource>(a, kGround, 1.0);
    const std::size_t unknowns = n.assign_unknowns();
    ASSERT_LT(unknowns, kSparseAutoThreshold);
    SolverWorkspace ws;
    StampContext ctx;
    solve_mna(n, ctx, unknowns, {}, NewtonOptions{}, &ws);
    EXPECT_FALSE(ws.sparse_backend());
    // Explicit request overrides the gate.
    NewtonOptions forced;
    forced.backend = SolverBackend::kSparse;
    solve_mna(n, ctx, unknowns, {}, forced, &ws);
    EXPECT_TRUE(ws.sparse_backend());
  }
  // Macro array: kAuto goes sparse.
  {
    Netlist n;
    build_macro_array(n);
    const std::size_t unknowns = n.assign_unknowns();
    ASSERT_GE(unknowns, kSparseAutoThreshold);
    SolverWorkspace ws;
    StampContext ctx;
    solve_mna(n, ctx, unknowns, {}, NewtonOptions{}, &ws);
    EXPECT_TRUE(ws.sparse_backend());
    NewtonOptions forced;
    forced.backend = SolverBackend::kDense;
    solve_mna(n, ctx, unknowns, {}, forced, &ws);
    EXPECT_FALSE(ws.sparse_backend());
  }
}

TEST(SparseBackend, FullyStaticSystemReusesSparseFactorization) {
  Netlist n;
  build_macro_array(n);
  const std::size_t unknowns = n.assign_unknowns();
  SolverWorkspace ws;
  StampContext ctx;
  ctx.mode = StampContext::Mode::kTransient;
  ctx.dt = 100e-9;
  NewtonOptions opts;  // kAuto -> sparse at this size
  std::vector<double> guess(unknowns, 0.0);
  for (int step = 0; step < 5; ++step) {
    ctx.t = 100e-9 * (step + 1);
    guess = solve_mna(n, ctx, unknowns, guess, opts, &ws);
  }
  EXPECT_TRUE(ws.sparse_backend());
  EXPECT_TRUE(ws.matrix_fully_static());
  EXPECT_EQ(ws.stats().lu_factorizations, 1u);
  EXPECT_EQ(ws.stats().lu_reuses, 4u);
  EXPECT_EQ(ws.stats().sparse_refactors, 0u);
}

TEST(SparseBackend, NonlinearNewtonReplaysPivotsInsteadOfRefactoring) {
  // A stable voltage-controlled switch makes the matrix dynamic: the
  // first iteration runs the pivoting factor(), every later iteration
  // replays the stored schedule (sparse_refactors counts them).
  Netlist n;
  build_macro_array(n);
  const NodeId out = n.find_node("out");
  const NodeId tap = n.node("tap");
  n.add<VoltageSwitch>(out, tap, out, kGround, /*threshold=*/1.0,
                       /*r_on=*/10.0, /*r_off=*/1e6);
  n.add<Resistor>(tap, kGround, 1e3);
  const std::size_t unknowns = n.assign_unknowns();
  SolverWorkspace ws;
  StampContext ctx;
  NewtonOptions opts;
  solve_mna(n, ctx, unknowns, {}, opts, &ws);
  EXPECT_TRUE(ws.sparse_backend());
  EXPECT_FALSE(ws.matrix_fully_static());
  EXPECT_GE(ws.stats().assemblies, 2u);
  // One pivoting factorization, the rest schedule replays.
  EXPECT_GE(ws.stats().sparse_refactors, ws.stats().assemblies - 1);
}

TEST(SparseBackend, RescueLadderRunsUnchangedOnSparsePath) {
  // Bistable comparator: no consistent DC state, so the whole ladder
  // (gmin ramp re-binds included) runs and exhausts. Forcing the sparse
  // backend must produce the same typed verdict as dense — and the gmin
  // re-binds exercise symbolic reuse across fingerprint changes.
  auto run = [](SolverBackend backend) {
    Netlist n;
    const NodeId in = n.node("in");
    const NodeId out = n.node("out");
    n.add<VoltageSource>(in, kGround, 5.0);
    n.add<Resistor>(in, out, 1e3);
    n.add<VoltageSwitch>(out, kGround, out, kGround, /*threshold=*/2.5,
                         /*r_on=*/1.0, /*r_off=*/1e9);
    DcOptions opts;
    opts.newton.max_iterations = 60;
    opts.newton.backend = backend;
    opts.source_steps = 4;
    opts.rescue.max_gmin_steps = 2;
    core::ErrorCode code = core::ErrorCode::kNone;
    try {
      dc_operating_point(n, opts);
    } catch (const core::SolverError& e) {
      code = e.code();
    }
    return code;
  };
  const core::ErrorCode dense = run(SolverBackend::kDense);
  const core::ErrorCode sparse = run(SolverBackend::kSparse);
  EXPECT_EQ(dense, core::ErrorCode::kNonConvergent);
  EXPECT_EQ(sparse, dense);
}

TEST(SparseBackend, SingularSparseSystemClassifiesAsSingularMatrixError) {
  // Two voltage sources fighting over one node is structurally singular.
  // The sparse engine's runtime_error must classify exactly like the
  // dense engine's: core::SingularMatrixError, not a raw exception.
  Netlist n;
  const NodeId a = n.node("a");
  n.add<VoltageSource>(a, kGround, 1.0);
  n.add<VoltageSource>(a, kGround, 2.0);
  const std::size_t unknowns = n.assign_unknowns();
  NewtonOptions opts;
  opts.backend = SolverBackend::kSparse;
  StampContext ctx;
  EXPECT_THROW(solve_mna(n, ctx, unknowns, {}, opts), core::SingularMatrixError);
}

}  // namespace
}  // namespace msbist::circuit
