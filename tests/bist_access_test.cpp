// Unit tests for the serial test-access port and current comparator.
#include <gtest/gtest.h>

#include "adc/dual_slope.h"
#include "analog/current_comparator.h"
#include "bist/test_access.h"

namespace msbist {
namespace {

bist::BistReport healthy_report() {
  bist::BistController ctrl = bist::BistController::typical();
  adc::DualSlopeAdc adc(adc::DualSlopeAdcConfig::characterized());
  return ctrl.run_all(adc);
}

TEST(ResultWord, PackPreservesVerdicts) {
  const bist::BistReport rep = healthy_report();
  const bist::ResultWord w = bist::ResultWord::pack(rep);
  EXPECT_EQ(w.overall_pass(), rep.pass);
  EXPECT_EQ(w.analog_pass(), rep.analog.pass);
  EXPECT_EQ(w.ramp_pass(), rep.ramp.pass);
  EXPECT_EQ(w.digital_pass(), rep.digital.pass);
  EXPECT_EQ(w.compressed_pass(), rep.compressed.pass);
  EXPECT_EQ(w.analog_signature(), rep.compressed.analog_signature);
  EXPECT_EQ(w.digital_signature(), rep.compressed.digital_signature & 0xFFFF);
}

TEST(ResultWord, FailingTierClearsFlag) {
  bist::BistReport rep = healthy_report();
  rep.compressed.pass = false;
  rep.pass = false;
  const bist::ResultWord w = bist::ResultWord::pack(rep);
  EXPECT_FALSE(w.overall_pass());
  EXPECT_FALSE(w.compressed_pass());
  EXPECT_TRUE(w.analog_pass());
}

TEST(TestAccessPort, SerialRoundTrip) {
  const bist::BistReport rep = healthy_report();
  const bist::ResultWord sent = bist::ResultWord::pack(rep);
  bist::TestAccessPort port;
  port.capture(sent);
  const std::vector<int> stream = port.shift_out();
  const bist::ResultWord got = bist::TestAccessPort::reassemble(stream);
  EXPECT_EQ(got.raw, sent.raw);
}

TEST(TestAccessPort, Validation) {
  bist::TestAccessPort port;
  EXPECT_THROW(port.shift_out(std::vector<int>(5, 0)), std::invalid_argument);
  EXPECT_THROW(bist::TestAccessPort::reassemble(std::vector<int>(5, 0)),
               std::invalid_argument);
}

TEST(CurrentComparatorTest, ThresholdAndHysteresis) {
  analog::CurrentComparatorParams p;
  p.threshold_a = 1e-3;
  p.hysteresis_a = 0.2e-3;
  analog::CurrentComparator cmp(p);
  EXPECT_FALSE(cmp.step(1.05e-3));  // inside the band, stays low
  EXPECT_TRUE(cmp.step(1.2e-3));    // above +half
  EXPECT_TRUE(cmp.step(0.95e-3));   // inside the band, stays high
  EXPECT_FALSE(cmp.step(0.8e-3));   // below -half
}

TEST(CurrentComparatorTest, ExcessFractionStatistic) {
  analog::CurrentComparatorParams p;
  p.threshold_a = 1e-3;
  p.hysteresis_a = 0.0;
  analog::CurrentComparator cmp(p);
  const std::vector<double> idd{0.5e-3, 2e-3, 2e-3, 0.5e-3};
  EXPECT_NEAR(cmp.excess_fraction(idd), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(cmp.excess_fraction({}), 0.0);
}

TEST(CurrentComparatorTest, Validation) {
  analog::CurrentComparatorParams p;
  p.threshold_a = 0.0;
  EXPECT_THROW(analog::CurrentComparator{p}, std::invalid_argument);
}

}  // namespace
}  // namespace msbist
