// Unit tests for the solver workspace: stamp caching, LU factorization
// reuse, and invalidation. The load-bearing property is bit-identity —
// every cached path must reproduce the from-scratch solve exactly (same
// doubles, not merely close), because golden waveform signatures and the
// batch engine's bit-identity guarantee both hash raw samples.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "circuit/dc.h"
#include "circuit/elements.h"
#include "circuit/mos.h"
#include "circuit/transient.h"
#include "circuit/workspace.h"
#include "faults/fault.h"

namespace msbist::circuit {
namespace {

// RC integrator driven by a sine: fully linear, constant matrix at fixed
// dt — the best case for LU reuse.
void build_rc(Netlist& n) {
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  n.add<VoltageSource>(in, kGround, std::make_shared<SineWave>(0.0, 1.0, 10e3));
  n.name_last("VIN");
  n.add<Resistor>(in, out, 1e3);
  n.add<Capacitor>(out, kGround, 100e-9);
}

// CMOS inverter with a load cap: nonlinear, every Newton iteration
// re-stamps the transistors.
void build_inverter(Netlist& n) {
  const NodeId vdd = n.node("vdd");
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  n.add<VoltageSource>(vdd, kGround, 5.0);
  n.add<VoltageSource>(in, kGround,
                       std::make_shared<PulseWave>(0.0, 5.0, 2e-6, 0.5e-6, 0.5e-6,
                                                   6e-6, 16e-6));
  n.name_last("VIN");
  n.add<Mosfet>(MosType::kNmos, out, in, kGround, MosParams::nmos_5um(10.0));
  n.add<Mosfet>(MosType::kPmos, out, in, vdd, MosParams::pmos_5um(30.0));
  n.add<Capacitor>(out, kGround, 1e-12);
}

// Switched path: TimedSwitch keeps the matrix time-varying even though
// the netlist is linear, exercising the dynamic-entry path.
void build_switched(Netlist& n) {
  const NodeId in = n.node("in");
  const NodeId mid = n.node("mid");
  n.add<VoltageSource>(in, kGround, 2.0);
  n.add<TimedSwitch>(in, mid, ClockWave(10e-6, 5e-6), 100.0, 1e9);
  n.add<Resistor>(mid, kGround, 10e3);
  n.add<Capacitor>(mid, kGround, 1e-9);
}

TransientResult run(void (*build)(Netlist&), bool cache, double dt, double t_stop) {
  Netlist n;
  build(n);
  TransientOptions opts;
  opts.dt = dt;
  opts.t_stop = t_stop;
  opts.solver_cache = cache;
  return transient(n, opts);
}

void expect_bit_identical(const TransientResult& a, const TransientResult& b) {
  ASSERT_EQ(a.samples(), b.samples());
  ASSERT_EQ(a.node_names(), b.node_names());
  for (const std::string& node : a.node_names()) {
    const auto& va = a.voltage(node);
    const auto& vb = b.voltage(node);
    for (std::size_t k = 0; k < va.size(); ++k) {
      // EXPECT_EQ on doubles: bit-identity, not tolerance.
      ASSERT_EQ(va[k], vb[k]) << node << " diverges at sample " << k;
    }
  }
  ASSERT_EQ(a.branch_names(), b.branch_names());
  for (const std::string& br : a.branch_names()) {
    const auto& ia = a.current(br);
    const auto& ib = b.current(br);
    for (std::size_t k = 0; k < ia.size(); ++k) {
      ASSERT_EQ(ia[k], ib[k]) << br << " diverges at sample " << k;
    }
  }
}

TEST(SolverCache, LinearWaveformBitIdentical) {
  const auto cached = run(build_rc, true, 1e-7, 2e-4);
  const auto reference = run(build_rc, false, 1e-7, 2e-4);
  expect_bit_identical(cached, reference);
  // Sanity: the circuit actually did something.
  EXPECT_GT(*std::max_element(cached.voltage("out").begin(),
                              cached.voltage("out").end()),
            0.1);
}

TEST(SolverCache, NonlinearWaveformBitIdentical) {
  const auto cached = run(build_inverter, true, 1e-8, 20e-6);
  const auto reference = run(build_inverter, false, 1e-8, 20e-6);
  expect_bit_identical(cached, reference);
  EXPECT_GT(*std::max_element(cached.voltage("out").begin(),
                              cached.voltage("out").end()),
            4.0);
}

TEST(SolverCache, TimedSwitchWaveformBitIdentical) {
  const auto cached = run(build_switched, true, 2e-7, 1e-4);
  const auto reference = run(build_switched, false, 2e-7, 1e-4);
  expect_bit_identical(cached, reference);
}

TEST(SolverCache, DcOperatingPointBitIdentical) {
  Netlist a;
  build_inverter(a);
  Netlist b;
  build_inverter(b);
  const DcResult cached = dc_operating_point(a);
  // dc_operating_point always runs through a workspace; the uncached
  // reference goes through solve_mna with caching disabled.
  DcOptions opts;
  const std::size_t unknowns = b.assign_unknowns();
  StampContext ctx;
  ctx.mode = StampContext::Mode::kDc;
  SolverWorkspace raw;
  raw.set_caching(false);
  const std::vector<double> ref =
      solve_mna(b, ctx, unknowns, std::vector<double>(unknowns, 0.0),
                opts.newton, &raw);
  ASSERT_EQ(cached.raw().size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(cached.raw()[i], ref[i]);
}

TEST(SolverWorkspaceTest, LinearNetlistFactorsOnce) {
  Netlist n;
  build_rc(n);
  const std::size_t unknowns = n.assign_unknowns();
  StampContext ctx;
  ctx.mode = StampContext::Mode::kTransient;
  ctx.dt = 1e-7;

  SolverWorkspace ws;
  std::vector<double> state(unknowns, 0.0);
  for (int k = 1; k <= 50; ++k) {
    ctx.t = 1e-7 * k;
    state = solve_mna(n, ctx, unknowns, state, NewtonOptions{}, &ws);
  }
  EXPECT_TRUE(ws.matrix_fully_static());
  EXPECT_FALSE(ws.nonlinear());
  EXPECT_EQ(ws.stats().binds, 1u);
  EXPECT_EQ(ws.stats().lu_factorizations, 1u);
  EXPECT_EQ(ws.stats().lu_reuses, 49u);
  EXPECT_EQ(ws.stats().assemblies, 50u);
}

TEST(SolverWorkspaceTest, NonlinearNetlistFactorsEveryIteration) {
  Netlist n;
  build_inverter(n);
  const std::size_t unknowns = n.assign_unknowns();
  StampContext ctx;
  ctx.mode = StampContext::Mode::kTransient;
  ctx.dt = 1e-8;
  ctx.t = 1e-8;

  SolverWorkspace ws;
  solve_mna(n, ctx, unknowns, std::vector<double>(unknowns, 0.0),
            NewtonOptions{}, &ws);
  EXPECT_TRUE(ws.nonlinear());
  EXPECT_FALSE(ws.matrix_fully_static());
  EXPECT_EQ(ws.stats().lu_reuses, 0u);
  EXPECT_EQ(ws.stats().lu_factorizations, ws.stats().assemblies);
}

TEST(SolverWorkspaceTest, DtChangeRebinds) {
  Netlist n;
  build_rc(n);
  const std::size_t unknowns = n.assign_unknowns();
  StampContext ctx;
  ctx.mode = StampContext::Mode::kTransient;
  ctx.dt = 1e-7;
  ctx.t = 1e-7;

  SolverWorkspace ws;
  solve_mna(n, ctx, unknowns, std::vector<double>(unknowns, 0.0),
            NewtonOptions{}, &ws);
  EXPECT_EQ(ws.stats().binds, 1u);
  EXPECT_EQ(ws.stats().lu_factorizations, 1u);

  // New dt changes the capacitor companion conductance: the cached base
  // and factorization are stale, and the fingerprint catches it.
  ctx.dt = 2e-7;
  ctx.t = 2e-7;
  const std::vector<double> fast = solve_mna(
      n, ctx, unknowns, std::vector<double>(unknowns, 0.0), NewtonOptions{}, &ws);
  EXPECT_EQ(ws.stats().binds, 2u);
  EXPECT_EQ(ws.stats().lu_factorizations, 2u);

  // And the re-bound solve matches a fresh uncached workspace exactly.
  SolverWorkspace raw;
  raw.set_caching(false);
  const std::vector<double> ref = solve_mna(
      n, ctx, unknowns, std::vector<double>(unknowns, 0.0), NewtonOptions{}, &raw);
  ASSERT_EQ(fast.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(fast[i], ref[i]);
}

TEST(SolverWorkspaceTest, FaultInjectionRebindsHeldWorkspace) {
  Netlist n;
  build_rc(n);
  std::size_t unknowns = n.assign_unknowns();
  StampContext ctx;
  ctx.mode = StampContext::Mode::kTransient;
  ctx.dt = 1e-7;
  ctx.t = 1e-7;

  SolverWorkspace ws;
  solve_mna(n, ctx, unknowns, std::vector<double>(unknowns, 0.0),
            NewtonOptions{}, &ws);
  EXPECT_EQ(ws.stats().binds, 1u);

  // Inject a stuck-at through the campaign API: adds clamp elements, so
  // the element/unknown counts shift and the fingerprint mismatches.
  faults::inject(n, faults::FaultSpec::stuck_at(1, false),
                 [](int) { return std::string("out"); });
  unknowns = n.assign_unknowns();
  const std::vector<double> faulty = solve_mna(
      n, ctx, unknowns, std::vector<double>(unknowns, 0.0), NewtonOptions{}, &ws);
  EXPECT_EQ(ws.stats().binds, 2u);

  SolverWorkspace raw;
  raw.set_caching(false);
  const std::vector<double> ref = solve_mna(
      n, ctx, unknowns, std::vector<double>(unknowns, 0.0), NewtonOptions{}, &raw);
  ASSERT_EQ(faulty.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(faulty[i], ref[i]);
  // The clamp actually drags the output low.
  EXPECT_LT(std::abs(faulty[static_cast<std::size_t>(n.find_node("out"))]), 0.1);
}

TEST(SolverWorkspaceTest, InvalidateRebuildsAfterParameterMutation) {
  Netlist n;
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  n.add<VoltageSource>(in, kGround, 10.0);
  auto* r_top = n.add<Resistor>(in, out, 1e3);
  n.add<Resistor>(out, kGround, 1e3);
  const std::size_t unknowns = n.assign_unknowns();
  StampContext ctx;
  ctx.mode = StampContext::Mode::kDc;

  SolverWorkspace ws;
  std::vector<double> x = solve_mna(n, ctx, unknowns,
                                    std::vector<double>(unknowns, 0.0),
                                    NewtonOptions{}, &ws);
  EXPECT_NEAR(x[static_cast<std::size_t>(out)], 5.0, 1e-6);

  // In-place parameter change: invisible to the fingerprint, so the
  // caller must invalidate. With the explicit invalidate the divider
  // reflects the new ratio; the binds counter shows the rebuild.
  r_top->set_resistance(3e3);
  ws.invalidate();
  x = solve_mna(n, ctx, unknowns, std::vector<double>(unknowns, 0.0),
                NewtonOptions{}, &ws);
  EXPECT_EQ(ws.stats().binds, 2u);
  EXPECT_NEAR(x[static_cast<std::size_t>(out)], 2.5, 1e-6);
}

TEST(SolverWorkspaceTest, CachingToggleForcesRebind) {
  Netlist n;
  build_rc(n);
  const std::size_t unknowns = n.assign_unknowns();
  StampContext ctx;
  ctx.mode = StampContext::Mode::kTransient;
  ctx.dt = 1e-7;
  ctx.t = 1e-7;

  SolverWorkspace ws;
  solve_mna(n, ctx, unknowns, std::vector<double>(unknowns, 0.0),
            NewtonOptions{}, &ws);
  EXPECT_TRUE(ws.matrix_fully_static());
  ws.set_caching(false);
  solve_mna(n, ctx, unknowns, std::vector<double>(unknowns, 0.0),
            NewtonOptions{}, &ws);
  EXPECT_EQ(ws.stats().binds, 2u);
  EXPECT_FALSE(ws.matrix_fully_static());
}

TEST(SolverWorkspaceTest, ForcedDynamicTracksMutationWithoutRebind) {
  // set_forced_dynamic classifies a named element's entries as dynamic:
  // in-place parameter changes take effect on the next solve with no
  // invalidate() and no rebind — the cached base and classification
  // survive. This is the machinery under dc_sweep's swept_elements.
  Netlist n;
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  n.add<VoltageSource>(in, kGround, 10.0);
  n.add<Resistor>(in, out, 1e3);
  auto* r_bot = n.add<Resistor>(out, kGround, 1e3);
  n.name_last("RBOT");
  const std::size_t unknowns = n.assign_unknowns();
  StampContext ctx;
  ctx.mode = StampContext::Mode::kDc;

  SolverWorkspace ws;
  ws.set_forced_dynamic({"RBOT"});
  std::vector<double> x = solve_mna(n, ctx, unknowns,
                                    std::vector<double>(unknowns, 0.0),
                                    NewtonOptions{}, &ws);
  EXPECT_NEAR(x[static_cast<std::size_t>(out)], 5.0, 1e-6);
  EXPECT_FALSE(ws.matrix_fully_static());

  r_bot->set_resistance(3e3);  // no invalidate()
  x = solve_mna(n, ctx, unknowns, std::vector<double>(unknowns, 0.0),
                NewtonOptions{}, &ws);
  EXPECT_EQ(ws.stats().binds, 1u);  // caches survived the mutation
  EXPECT_NEAR(x[static_cast<std::size_t>(out)], 7.5, 1e-6);
}

TEST(SolverCache, DcSweepSweptElementsBitIdentical) {
  // A/B: naming the swept element (cache-preserving forced-dynamic path)
  // must reproduce the invalidate-per-point sweep bit for bit — the
  // keep-mask moves writes between base and per-iteration stamping but
  // never reorders any entry's accumulation.
  const std::vector<double> values = {500.0, 1e3, 2e3, 3e3, 9e3};
  const auto run_sweep = [&](bool name_swept) {
    Netlist n;
    const NodeId in = n.node("in");
    const NodeId out = n.node("out");
    n.add<VoltageSource>(in, kGround, 10.0);
    n.add<Resistor>(in, out, 1e3);
    auto* r_bot = n.add<Resistor>(out, kGround, 1e3);
    n.name_last("RBOT");
    DcOptions opts;
    if (name_swept) opts.swept_elements = {"RBOT"};
    return dc_sweep(
        n, values,
        [r_bot](Netlist&, double r) { r_bot->set_resistance(r); }, "out",
        opts);
  };
  const DcSweepResult legacy = run_sweep(false);
  const DcSweepResult fast = run_sweep(true);
  ASSERT_TRUE(legacy.complete());
  ASSERT_TRUE(fast.complete());
  ASSERT_EQ(fast.values.size(), legacy.values.size());
  for (std::size_t i = 0; i < legacy.values.size(); ++i) {
    EXPECT_EQ(fast.values[i], legacy.values[i]) << "point " << i;
  }
  EXPECT_NEAR(legacy.values[1], 5.0, 1e-6);  // sanity: the divider moved
  EXPECT_NEAR(legacy.values[4], 9.0, 1e-6);
}

TEST(SolverCache, DcSweepUnaffectedByCachedWorkspace) {
  // dc_sweep mutates a resistor per point through an arbitrary lambda;
  // the engine must invalidate per point or the sweep flatlines.
  Netlist n;
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  n.add<VoltageSource>(in, kGround, 10.0);
  n.add<Resistor>(in, out, 1e3);
  auto* r_bot = n.add<Resistor>(out, kGround, 1e3);

  const std::vector<double> values = {1e3, 3e3, 9e3};
  const auto sweep_result = dc_sweep(
      n, values,
      [&](Netlist&, double r) { r_bot->set_resistance(r); }, "out");
  ASSERT_TRUE(sweep_result.complete());
  const std::vector<double>& vout = sweep_result.values;
  ASSERT_EQ(vout.size(), 3u);
  EXPECT_NEAR(vout[0], 5.0, 1e-6);
  EXPECT_NEAR(vout[1], 7.5, 1e-6);
  EXPECT_NEAR(vout[2], 9.0, 1e-6);
}

}  // namespace
}  // namespace msbist::circuit
