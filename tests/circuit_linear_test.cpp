// Unit tests for the circuit engine on linear networks with closed-form
// solutions: dividers, RC charging, controlled sources, switches.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "circuit/dc.h"
#include "circuit/elements.h"
#include "circuit/transient.h"

namespace msbist::circuit {
namespace {

TEST(DcLinear, VoltageDivider) {
  Netlist n;
  const NodeId in = n.node("in");
  const NodeId mid = n.node("mid");
  n.add<VoltageSource>(in, kGround, 10.0);
  n.add<Resistor>(in, mid, 1e3);
  n.add<Resistor>(mid, kGround, 3e3);
  const DcResult op = dc_operating_point(n);
  EXPECT_NEAR(op.voltage("mid"), 7.5, 1e-6);
  EXPECT_NEAR(op.voltage("in"), 10.0, 1e-9);
}

TEST(DcLinear, GroundAliases) {
  Netlist n;
  EXPECT_EQ(n.node("0"), kGround);
  EXPECT_EQ(n.node("gnd"), kGround);
  EXPECT_EQ(n.node("GND"), kGround);
  EXPECT_GE(n.node("x"), 0);
}

TEST(DcLinear, UnknownNodeThrows) {
  Netlist n;
  n.node("a");
  EXPECT_THROW(n.find_node("missing"), std::out_of_range);
}

TEST(DcLinear, CurrentSourceIntoResistor) {
  Netlist n;
  const NodeId a = n.node("a");
  // 1 mA from ground into node a through the source, 2k to ground -> 2 V.
  n.add<CurrentSource>(kGround, a, 1e-3);
  n.add<Resistor>(a, kGround, 2e3);
  const DcResult op = dc_operating_point(n);
  EXPECT_NEAR(op.voltage("a"), 2.0, 1e-6);
}

TEST(DcLinear, VoltageSourceBranchCurrent) {
  Netlist n;
  const NodeId a = n.node("a");
  auto* vs = n.add<VoltageSource>(a, kGround, 5.0);
  n.add<Resistor>(a, kGround, 1e3);
  const DcResult op = dc_operating_point(n);
  // 5 V across 1k: 5 mA flows out of the + terminal, so the branch
  // current (pos -> through source -> neg) is -5 mA.
  EXPECT_NEAR(vs->current_in(op.raw()), -5e-3, 1e-9);
}

TEST(DcLinear, VcvsAmplifies) {
  Netlist n;
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  n.add<VoltageSource>(in, kGround, 0.5);
  n.add<Vcvs>(out, kGround, in, kGround, 10.0);
  n.add<Resistor>(out, kGround, 1e4);
  const DcResult op = dc_operating_point(n);
  EXPECT_NEAR(op.voltage("out"), 5.0, 1e-9);
}

TEST(DcLinear, VccsTransconductance) {
  Netlist n;
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  n.add<VoltageSource>(in, kGround, 2.0);
  // gm = 1 mS driving out (current flows out -> gnd inside the source),
  // so 2 mA is pulled out of node "out": v = -2 mA * 1k = -2 V.
  n.add<Vccs>(out, kGround, in, kGround, 1e-3);
  n.add<Resistor>(out, kGround, 1e3);
  const DcResult op = dc_operating_point(n);
  // gmin (1e-12 S) leaks a hair of current, so the match is ~1e-9 loose.
  EXPECT_NEAR(op.voltage("out"), -2.0, 1e-6);
}

TEST(DcLinear, SweepResistorLadder) {
  Netlist n;
  const NodeId in = n.node("in");
  const NodeId mid = n.node("mid");
  auto* vs = n.add<VoltageSource>(in, kGround, 0.0);
  n.add<Resistor>(in, mid, 1e3);
  n.add<Resistor>(mid, kGround, 1e3);
  const std::vector<double> values{0.0, 1.0, 2.0, 5.0};
  const auto sweep_result = dc_sweep(
      n, values, [&](Netlist&, double v) { vs->set_dc(v); }, "mid");
  ASSERT_TRUE(sweep_result.complete());
  const std::vector<double>& out = sweep_result.values;
  ASSERT_EQ(out.size(), 4u);
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(out[i], values[i] / 2.0, 1e-6);
  }
}

TEST(TransientLinear, RcChargingMatchesAnalytic) {
  // 1k * 1uF = 1 ms time constant driven by a 5 V step.
  Netlist n;
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  n.add<VoltageSource>(in, kGround,
                       std::make_shared<PwlWave>(std::vector<std::pair<double, double>>{
                           {0.0, 0.0}, {1e-9, 5.0}}));
  n.add<Resistor>(in, out, 1e3);
  n.add<Capacitor>(out, kGround, 1e-6);

  TransientOptions opts;
  opts.dt = 10e-6;
  opts.t_stop = 5e-3;
  const TransientResult res = transient(n, opts);
  const auto& v = res.voltage("out");
  const auto& t = res.time();
  for (std::size_t k = 10; k < v.size(); k += 25) {
    // The input step lands inside the first interval, so the simulated
    // trajectory is offset by about half a step; compare accordingly.
    const double expect = 5.0 * (1.0 - std::exp(-(t[k] - opts.dt / 2.0) / 1e-3));
    EXPECT_NEAR(v[k], expect, 0.01) << "t=" << t[k];
  }
}

TEST(TransientLinear, BackwardEulerAlsoAccurate) {
  Netlist n;
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  n.add<VoltageSource>(in, kGround,
                       std::make_shared<PwlWave>(std::vector<std::pair<double, double>>{
                           {0.0, 0.0}, {1e-9, 1.0}}));
  n.add<Resistor>(in, out, 1e4);
  n.add<Capacitor>(out, kGround, 1e-8);  // tau = 100 us

  TransientOptions opts;
  opts.dt = 1e-6;
  opts.t_stop = 500e-6;
  opts.method = Integration::kBackwardEuler;
  const TransientResult res = transient(n, opts);
  const auto& v = res.voltage("out");
  const double expect = 1.0 * (1.0 - std::exp(-500e-6 / 100e-6));
  EXPECT_NEAR(v.back(), expect, 0.01);
}

TEST(TransientLinear, InitialConditionRespected) {
  Netlist n;
  const NodeId out = n.node("out");
  n.add<Resistor>(out, kGround, 1e3);
  auto* cap = n.add<Capacitor>(out, kGround, 1e-6);
  cap->set_initial_voltage(3.0);

  TransientOptions opts;
  opts.dt = 10e-6;
  opts.t_stop = 1e-3;  // one time constant
  opts.use_initial_conditions = true;
  const TransientResult res = transient(n, opts);
  const auto& v = res.voltage("out");
  EXPECT_NEAR(v.front(), 3.0, 0.05);
  EXPECT_NEAR(v.back(), 3.0 * std::exp(-1.0), 0.02);
}

TEST(TransientLinear, DcStartIsSteadyState) {
  // With no stimulus change the transient must hold the operating point.
  Netlist n;
  const NodeId a = n.node("a");
  const NodeId b = n.node("b");
  n.add<VoltageSource>(a, kGround, 2.0);
  n.add<Resistor>(a, b, 1e3);
  n.add<Resistor>(b, kGround, 1e3);
  n.add<Capacitor>(b, kGround, 1e-9);
  TransientOptions opts;
  opts.dt = 1e-6;
  opts.t_stop = 100e-6;
  const TransientResult res = transient(n, opts);
  for (double v : res.voltage("b")) EXPECT_NEAR(v, 1.0, 1e-6);
}

TEST(TransientLinear, SineThroughRcAttenuates) {
  // First-order RC at f = 10 fc attenuates to ~1/sqrt(101) and lags ~84 deg.
  Netlist n;
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  const double r = 1e3, c = 1e-7;  // fc = 1.59 kHz
  const double f = 15.9e3;
  n.add<VoltageSource>(in, kGround, std::make_shared<SineWave>(0.0, 1.0, f));
  n.add<Resistor>(in, out, r);
  n.add<Capacitor>(out, kGround, c);
  TransientOptions opts;
  opts.dt = 1.0 / f / 200.0;
  opts.t_stop = 10.0 / f;
  const TransientResult res = transient(n, opts);
  const auto& v = res.voltage("out");
  double peak = 0.0;
  for (std::size_t k = v.size() / 2; k < v.size(); ++k) peak = std::max(peak, v[k]);
  const double wrc = 2.0 * std::acos(-1.0) * f * r * c;
  EXPECT_NEAR(peak, 1.0 / std::sqrt(1.0 + wrc * wrc), 0.01);
}

TEST(Switches, TimedSwitchConnectsAndDisconnects) {
  // Switch closed during the first clock half: capacitor charges; open
  // afterwards: it holds.
  Netlist n;
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  n.add<VoltageSource>(in, kGround, 2.0);
  n.add<TimedSwitch>(in, out, ClockWave(1e-3, 0.5e-3), 10.0, 1e12);
  n.add<Capacitor>(out, kGround, 1e-8);
  TransientOptions opts;
  opts.dt = 1e-6;
  opts.t_stop = 0.9e-3;
  opts.use_initial_conditions = true;
  opts.method = Integration::kBackwardEuler;
  const TransientResult res = transient(n, opts);
  const auto& v = res.voltage("out");
  // tau on = 10 * 1e-8 = 100 ns << 0.5 ms: fully charged by mid-period.
  EXPECT_NEAR(v[450], 2.0, 1e-3);
  // Held after the switch opens.
  EXPECT_NEAR(v.back(), 2.0, 1e-3);
}

TEST(Switches, VoltageSwitchFollowsControl) {
  Netlist n;
  const NodeId ctrl = n.node("ctrl");
  const NodeId a = n.node("a");
  n.add<VoltageSource>(ctrl, kGround, 3.0);
  n.add<VoltageSource>(n.node("src"), kGround, 1.0);
  n.add<VoltageSwitch>(n.find_node("src"), a, ctrl, kGround, 2.5, 1.0, 1e12);
  n.add<Resistor>(a, kGround, 1e6);
  const DcResult op = dc_operating_point(n);
  EXPECT_NEAR(op.voltage("a"), 1.0, 1e-3);
}

TEST(Validation, BadElementParametersThrow) {
  Netlist n;
  const NodeId a = n.node("a");
  EXPECT_THROW(n.add<Resistor>(a, kGround, 0.0), std::invalid_argument);
  EXPECT_THROW(n.add<Capacitor>(a, kGround, -1e-9), std::invalid_argument);
  EXPECT_THROW(n.add<TimedSwitch>(a, kGround, ClockWave(1e-3, 0.5e-3), 1e3, 1e2),
               std::invalid_argument);
}

TEST(Validation, TransientOptionValidation) {
  Netlist n;
  n.add<Resistor>(n.node("a"), kGround, 1e3);
  TransientOptions opts;
  opts.dt = 0.0;
  EXPECT_THROW(transient(n, opts), std::invalid_argument);
  opts.dt = 1e-6;
  opts.t_stop = -1.0;
  EXPECT_THROW(transient(n, opts), std::invalid_argument);
}

TEST(Validation, SingularCircuitThrows) {
  // Two ideal voltage sources fighting across the same node pair.
  Netlist n;
  const NodeId a = n.node("a");
  n.add<VoltageSource>(a, kGround, 1.0);
  n.add<VoltageSource>(a, kGround, 2.0);
  EXPECT_THROW(dc_operating_point(n), std::runtime_error);
}

}  // namespace
}  // namespace msbist::circuit
