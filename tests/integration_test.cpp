// Cross-module integration tests: full campaigns, parser-to-experiment
// flows, and the device-to-tester serial path.
#include <gtest/gtest.h>

#include <cmath>

#include "bist/test_access.h"
#include "circuit/parser.h"
#include "circuit/transient.h"
#include "core/device.h"
#include "faults/campaign.h"
#include "faults/universe.h"
#include "tsrt/transient_test.h"

namespace msbist {
namespace {

TEST(Integration, FullCampaignOverOp1Universe) {
  // Wire the campaign runner to the real TSRT engine: 100 % coverage of
  // the paper's 16-fault universe with the combined signature.
  using namespace tsrt;
  const TsrtOptions opts = paper_options(CircuitKind::kOp1Follower);
  const TsrtRun golden =
      run_transient_test(CircuitKind::kOp1Follower, std::nullopt, opts);
  const faults::CampaignReport report = faults::run_campaign(
      faults::op1_fault_universe(), [&](const faults::FaultSpec& f) {
        faults::FaultResult r;
        r.fault = f;
        const TsrtRun faulty = run_transient_test(CircuitKind::kOp1Follower, f, opts);
        r.score = combined_detection_percent(golden, faulty);
        r.detected = is_detected(r.score);
        return r;
      });
  EXPECT_EQ(report.results.size(), 16u);
  EXPECT_DOUBLE_EQ(report.coverage(), 1.0);
  for (const auto& r : report.results) {
    EXPECT_GT(r.score, 30.0) << r.fault.label;
  }
}

TEST(Integration, SpiceDeckRcFilterMatchesBuiltCircuit) {
  // The same RC low-pass built from a deck and from the C++ API must
  // produce identical transients.
  circuit::Netlist parsed = circuit::parse_netlist(
      "V1 in 0 PWL(0 0 1n 5)\n"
      "R1 in out 1k\n"
      "C1 out 0 1u\n");
  circuit::Netlist built;
  const auto in = built.node("in");
  const auto out = built.node("out");
  built.add<circuit::VoltageSource>(
      in, circuit::kGround,
      std::make_shared<circuit::PwlWave>(
          std::vector<std::pair<double, double>>{{0.0, 0.0}, {1e-9, 5.0}}));
  built.add<circuit::Resistor>(in, out, 1e3);
  built.add<circuit::Capacitor>(out, circuit::kGround, 1e-6);

  circuit::TransientOptions opts;
  opts.dt = 10e-6;
  opts.t_stop = 2e-3;
  const auto a = circuit::transient(parsed, opts);
  const auto b = circuit::transient(built, opts);
  const auto& va = a.voltage("out");
  const auto& vb = b.voltage("out");
  ASSERT_EQ(va.size(), vb.size());
  for (std::size_t k = 0; k < va.size(); ++k) EXPECT_NEAR(va[k], vb[k], 1e-12);
}

TEST(Integration, DeviceVerdictSurvivesSerialLink) {
  // Device -> BIST -> result word -> scan chain -> tester reassembly.
  core::Device good = core::Device::fabricate(3);
  adc::DualSlopeAdcConfig bad_cfg = adc::DualSlopeAdcConfig::characterized();
  bad_cfg.latch_faults.stuck_high_mask = 0x10;
  core::Device bad(4, bad_cfg);

  for (auto* die : {&good, &bad}) {
    const bist::BistReport rep = die->run_bist();
    bist::TestAccessPort port;
    port.capture(bist::ResultWord::pack(rep));
    const bist::ResultWord seen =
        bist::TestAccessPort::reassemble(port.shift_out());
    EXPECT_EQ(seen.overall_pass(), rep.pass);
    EXPECT_EQ(seen.digital_signature(), rep.compressed.digital_signature & 0xFFFF);
  }
}

TEST(Integration, CharacterizationConsistentAcrossMethods) {
  // Ramp-method transitions and servo-method single transitions must
  // agree on the same die within a fraction of an LSB.
  core::Device die = core::Device::fabricate(0);
  auto& adc = die.adc();
  const adc::AdcTransferFn xfer = [&](double v) -> std::uint32_t {
    return adc.full_scale_code() + 40u - adc.code_for(v);
  };
  const auto tl = adc::measure_transitions_ramp(xfer, 0.19, 0.52, 0.0005, 16);
  ASSERT_GE(tl.transitions.size(), 20u);
  const std::uint32_t probe_code = tl.base_code + 10;
  const double servo = adc::measure_transition_servo(xfer, probe_code, 0.19, 0.52, 31);
  EXPECT_NEAR(servo, tl.transitions[9], 0.005);
}

TEST(Integration, AllThreeCircuitsShareTheFaultMechanism) {
  // The same FaultSpec applies across circuits through each circuit's
  // node map — smoke the whole matrix once.
  using namespace tsrt;
  const auto fault = faults::FaultSpec::stuck_at(8, false);
  for (auto kind : {CircuitKind::kOp1Follower, CircuitKind::kScIntegratorAlone,
                    CircuitKind::kScIntegratorComparator}) {
    TsrtOptions opts = paper_options(kind);
    const TsrtRun golden = run_transient_test(kind, std::nullopt, opts);
    const TsrtRun faulty = run_transient_test(kind, fault, opts);
    EXPECT_GT(combined_detection_percent(golden, faulty), 20.0)
        << circuit_name(kind);
  }
}

}  // namespace
}  // namespace msbist
