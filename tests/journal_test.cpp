// service::Journal — the write-ahead job journal: CRC framing, replay,
// torn-tail tolerance, compaction across reopen, terminal eviction, and
// degraded-mode behavior under injected write failures.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "core/crc32.h"
#include "core/error.h"
#include "service/journal.h"

namespace {

using namespace msbist;
using service::Journal;
using service::JournalOptions;
using service::RecoveredState;

/// A fresh, empty state directory under the test temp root. Removes any
/// leftover segment files from a previous run of the same test.
std::string fresh_state_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/msbist_journal_" + name;
  ::mkdir(dir.c_str(), 0777);
  if (DIR* d = ::opendir(dir.c_str())) {
    while (const dirent* e = ::readdir(d)) {
      const std::string entry = e->d_name;
      if (entry == "." || entry == "..") continue;
      ::unlink((dir + "/" + entry).c_str());
    }
    ::closedir(d);
  }
  return dir;
}

std::size_t segment_files(const std::string& dir) {
  std::size_t count = 0;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (const dirent* e = ::readdir(d)) {
      const std::string entry = e->d_name;
      if (entry.rfind("journal-", 0) == 0) ++count;
    }
    ::closedir(d);
  }
  return count;
}

void append_raw(const std::string& dir, const std::string& bytes) {
  std::ofstream out(dir + "/journal-000001.wal",
                    std::ios::binary | std::ios::app);
  out << bytes;
}

JournalOptions options_for(const std::string& dir) {
  JournalOptions o;
  o.state_dir = dir;
  o.fsync_every_records = 1;
  return o;
}

TEST(Crc32, KnownVectors) {
  // The standard CRC-32 (IEEE 802.3) check value.
  EXPECT_EQ(core::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(core::crc32(""), 0u);
  EXPECT_EQ(core::crc32_hex(0xCBF43926u), "cbf43926");
  EXPECT_EQ(core::crc32_hex(0x0000ABCDu), "0000abcd");
}

TEST(Journal, FrameIsChecksumSpacePayloadNewline) {
  const std::string line = Journal::frame(R"({"type":"clean_shutdown"})");
  ASSERT_GT(line.size(), 10u);
  EXPECT_EQ(line[8], ' ');
  EXPECT_EQ(line.back(), '\n');
  const std::string payload = line.substr(9, line.size() - 10);
  EXPECT_EQ(line.substr(0, 8), core::crc32_hex(core::crc32(payload)));
}

TEST(Journal, ReplayOfMissingDirectoryIsEmpty) {
  const RecoveredState state =
      Journal::replay(testing::TempDir() + "/msbist_journal_never_created");
  EXPECT_TRUE(state.jobs.empty());
  EXPECT_FALSE(state.clean_shutdown);
  EXPECT_EQ(state.skipped_records, 0u);
}

TEST(Journal, LifecycleRoundTripsThroughReplay) {
  const std::string dir = fresh_state_dir("lifecycle");
  {
    Journal j(options_for(dir));
    j.append_admit(7, R"({"kind":"batch","device_count":3})");
    j.append_state(7, "running");
    j.append_checkpoint(7, 0, 3, R"({"die":0})");
    j.append_checkpoint(7, 2, 3, R"({"die":2})");
    j.append_admit(8, R"({"kind":"testability"})");
    j.append_result(8, "succeeded", R"({"pass":true,"detail":"ok"})", "",
                    "testability_report", R"({"kind":"testability_report"})");
    EXPECT_FALSE(j.degraded());
    EXPECT_GT(j.bytes(), 0u);
    EXPECT_EQ(j.segments(), 1u);
  }

  const RecoveredState state = Journal::replay(dir);
  EXPECT_EQ(state.skipped_records, 0u);
  EXPECT_FALSE(state.clean_shutdown);
  ASSERT_EQ(state.jobs.size(), 2u);

  const service::RecoveredJob& interrupted = state.jobs.at(7);
  EXPECT_EQ(interrupted.request_json, R"({"kind":"batch","device_count":3})");
  EXPECT_EQ(interrupted.state, "running");
  EXPECT_FALSE(interrupted.has_result);
  ASSERT_EQ(interrupted.checkpoints.size(), 2u);
  EXPECT_EQ(interrupted.checkpoints.at(0), R"({"die":0})");
  EXPECT_EQ(interrupted.checkpoints.at(2), R"({"die":2})");
  EXPECT_EQ(interrupted.checkpoint_total, 3u);

  const service::RecoveredJob& finished = state.jobs.at(8);
  EXPECT_TRUE(finished.has_result);
  EXPECT_EQ(finished.result_state, "succeeded");
  EXPECT_EQ(finished.outcome_json, R"({"pass":true,"detail":"ok"})");
  EXPECT_TRUE(finished.failure_json.empty());
  EXPECT_EQ(finished.report_kind, "testability_report");
  // A result clears the job's checkpoints: finished jobs need no resume.
  EXPECT_TRUE(finished.checkpoints.empty());
}

TEST(Journal, CleanShutdownMarkerOnlyCountsWhenLast) {
  const std::string dir = fresh_state_dir("clean_marker");
  {
    Journal j(options_for(dir));
    j.append_clean_shutdown();
  }
  EXPECT_TRUE(Journal::replay(dir).clean_shutdown);

  {
    Journal j(options_for(dir));
    j.append_admit(1, R"({"kind":"batch"})");
  }
  // A later admission means the shutdown was NOT the final word.
  EXPECT_FALSE(Journal::replay(dir).clean_shutdown);
}

TEST(Journal, TornTailAndGarbageAreSkippedNotFatal) {
  const std::string dir = fresh_state_dir("torn_tail");
  append_raw(dir, Journal::frame(R"({"type":"admit","id":1,"request":{}})"));
  append_raw(dir, Journal::frame(R"({"type":"state","id":1,"state":"running"})"));
  // A torn final record: the process died mid-write, so the line ends
  // without its tail (and its checksum cannot match what remains).
  const std::string torn =
      Journal::frame(R"({"type":"checkpoint","id":1,"unit":0,"total":9,"data":{}})");
  append_raw(dir, torn.substr(0, torn.size() / 2));

  RecoveredState state = Journal::replay(dir);
  EXPECT_EQ(state.skipped_records, 1u);
  ASSERT_EQ(state.jobs.size(), 1u);
  EXPECT_EQ(state.jobs.at(1).state, "running");
  EXPECT_TRUE(state.jobs.at(1).checkpoints.empty());

  // Pile on every other corruption class: a bit-rotted payload under a
  // stale checksum, plain garbage, and a wrong-schema (but CRC-valid)
  // record. None of them may prevent the journal from OPENING. The
  // rotted line glues onto the unterminated torn tail (one merged bad
  // line), so three lines fail verification in total.
  std::string rotted = Journal::frame(R"({"type":"state","id":1,"state":"x"})");
  rotted[12] ^= 0x20;  // flip one payload bit; stored CRC now mismatches
  append_raw(dir, rotted);
  append_raw(dir, "not a journal line at all\n");
  append_raw(dir, Journal::frame(R"({"type":"from_the_future","id":1})"));

  Journal j(options_for(dir));
  EXPECT_EQ(j.recovered().skipped_records, 3u);
  EXPECT_FALSE(j.degraded());
  ASSERT_EQ(j.recovered().jobs.size(), 1u);
  EXPECT_EQ(j.recovered().jobs.at(1).request_json, "{}");

  // Boot compaction rewrote only the valid state: a second replay of the
  // same directory is now perfectly clean.
  EXPECT_EQ(Journal::replay(dir).skipped_records, 0u);
}

TEST(Journal, ReopenCompactsToOneSegmentAndKeepsState) {
  const std::string dir = fresh_state_dir("compact");
  {
    Journal j(options_for(dir));
    j.append_admit(1, R"({"kind":"batch","device_count":4})");
    j.append_state(1, "running");
    for (std::size_t unit = 0; unit < 4; ++unit) {
      // Supersede each checkpoint once: replay keeps the latest.
      j.append_checkpoint(1, unit, 4, R"({"try":1})");
      j.append_checkpoint(1, unit, 4, R"({"try":2})");
    }
  }
  {
    Journal j(options_for(dir));
    EXPECT_EQ(segment_files(dir), 1u);
    const service::RecoveredJob& job = j.recovered().jobs.at(1);
    ASSERT_EQ(job.checkpoints.size(), 4u);
    EXPECT_EQ(job.checkpoints.at(3), R"({"try":2})");
  }
  // The second open compacted again: still exactly one segment, and the
  // compacted rewrite is smaller than the full append history was.
  EXPECT_EQ(segment_files(dir), 1u);
}

TEST(Journal, OnlineCompactionRollsTheSegment) {
  const std::string dir = fresh_state_dir("online_compact");
  JournalOptions o = options_for(dir);
  o.max_segment_bytes = 256;  // force frequent compaction
  Journal j(o);
  j.append_admit(1, R"({"kind":"batch","device_count":64})");
  for (std::size_t unit = 0; unit < 64; ++unit) {
    j.append_checkpoint(1, unit, 64, R"({"payload":"xxxxxxxxxxxxxxxx"})");
  }
  EXPECT_FALSE(j.degraded());
  EXPECT_EQ(j.segments(), 1u);
  EXPECT_EQ(segment_files(dir), 1u);
  // Nothing lost to the rolls: every checkpoint is still in the table.
  j.sync();
  // (Replay through a fresh journal would re-open the same dir; rely on
  // the in-memory recovered() of a reopen instead.)
  Journal reopened(options_for(dir));
  EXPECT_EQ(reopened.recovered().jobs.at(1).checkpoints.size(), 64u);
}

TEST(Journal, TerminalJobsBeyondRetentionAreEvicted) {
  const std::string dir = fresh_state_dir("evict");
  JournalOptions o = options_for(dir);
  o.retain_terminal = 2;
  {
    Journal j(o);
    for (std::uint64_t id = 1; id <= 4; ++id) {
      j.append_admit(id, R"({"kind":"testability"})");
      j.append_result(id, "succeeded", R"({"pass":true,"detail":""})", "",
                      "testability_report", "null");
    }
    j.append_admit(5, R"({"kind":"batch"})");  // live: never evicted
  }
  // Eviction runs in the reopen's boot compaction; recovered() is the
  // pre-eviction snapshot, so assert against what landed on DISK.
  { Journal reopened(o); }
  const RecoveredState state = Journal::replay(dir);
  EXPECT_EQ(state.jobs.count(1), 0u);
  EXPECT_EQ(state.jobs.count(2), 0u);
  EXPECT_EQ(state.jobs.count(3), 1u);
  EXPECT_EQ(state.jobs.count(4), 1u);
  EXPECT_EQ(state.jobs.count(5), 1u);
}

TEST(Journal, WriteFailureDegradesInsteadOfThrowing) {
  const std::string dir = fresh_state_dir("degrade");
  JournalOptions o = options_for(dir);
  int writes_allowed = 2;
  o.write_override = [&writes_allowed](int fd, const void* buf,
                                       std::size_t count) -> ssize_t {
    if (writes_allowed-- <= 0) {
      errno = ENOSPC;
      return -1;
    }
    return ::write(fd, buf, count);
  };
  Journal j(std::move(o));
  EXPECT_FALSE(j.degraded());

  j.append_admit(1, R"({"kind":"batch"})");
  j.append_admit(2, R"({"kind":"batch"})");
  j.append_admit(3, R"({"kind":"batch"})");  // the disk is now "full"
  EXPECT_TRUE(j.degraded());
  EXPECT_EQ(j.degraded_events(), 1u);
  EXPECT_EQ(j.segments(), 0u);

  // Post-degrade appends are silent no-ops — never a crash, never a
  // second warning.
  j.append_result(1, "succeeded", R"({"pass":true,"detail":""})", "", "",
                  "null");
  j.append_clean_shutdown();
  j.sync();
  EXPECT_EQ(j.degraded_events(), 1u);
}

TEST(Journal, ShortWriteAlsoDegrades) {
  const std::string dir = fresh_state_dir("short_write");
  JournalOptions o = options_for(dir);
  bool failed_once = false;
  o.write_override = [&failed_once](int fd, const void* buf,
                                    std::size_t count) -> ssize_t {
    if (failed_once) return 0;  // EOF-style short write
    failed_once = true;
    return ::write(fd, buf, count);
  };
  Journal j(std::move(o));
  j.append_admit(1, R"({"kind":"batch"})");
  j.append_admit(2, R"({"kind":"batch"})");
  EXPECT_TRUE(j.degraded());
  EXPECT_EQ(j.degraded_events(), 1u);
}

TEST(Journal, UnwritableStateDirThrowsStructuredInternal) {
  // A path under a regular file can never become a directory.
  const std::string file = testing::TempDir() + "/msbist_journal_blocker";
  { std::ofstream out(file); out << "x"; }
  JournalOptions o;
  o.state_dir = file + "/nested";
  try {
    Journal j(std::move(o));
    FAIL() << "expected core::SolverError";
  } catch (const core::SolverError& e) {
    EXPECT_EQ(e.code(), core::ErrorCode::kInternal);
  }
}

}  // namespace
