// Unit tests for fault models, universes, injection and campaigns.
#include <gtest/gtest.h>

#include "analog/opamp.h"
#include "circuit/dc.h"
#include "circuit/elements.h"
#include "faults/campaign.h"
#include "faults/fault.h"
#include "faults/universe.h"

namespace msbist::faults {
namespace {

TEST(Universe, Op1HasSixteenFaults) {
  const auto u = op1_fault_universe();
  EXPECT_EQ(u.size(), 16u);
  int singles = 0, doubles = 0;
  for (const auto& f : u) {
    if (f.kind == FaultKind::kStuckAt0 || f.kind == FaultKind::kStuckAt1) ++singles;
    if (f.kind == FaultKind::kDoubleStuck) ++doubles;
  }
  EXPECT_EQ(singles, 10);  // nodes 4, 5, 7, 8, 3 x two polarities
  EXPECT_EQ(doubles, 6);   // pairs 8-9, 5-8, 4-6 x two polarities
}

TEST(Universe, ScHasTwelveFaults) {
  const auto u = sc_fault_universe();
  EXPECT_EQ(u.size(), 12u);
  int singles = 0, bridges = 0;
  for (const auto& f : u) {
    if (f.kind == FaultKind::kStuckAt0 || f.kind == FaultKind::kStuckAt1) ++singles;
    if (f.kind == FaultKind::kBridge) ++bridges;
  }
  EXPECT_EQ(singles, 10);  // integrator nodes 4, 5, 7, 8, 9
  EXPECT_EQ(bridges, 2);   // 6-7 and 5-8
}

TEST(Universe, LabelsAreUnique) {
  for (const auto& universe : {op1_fault_universe(), sc_fault_universe()}) {
    std::vector<std::string> labels;
    for (const auto& f : universe) labels.push_back(f.label);
    std::sort(labels.begin(), labels.end());
    EXPECT_EQ(std::adjacent_find(labels.begin(), labels.end()), labels.end());
  }
}

TEST(Universe, AllSingleStuckRange) {
  const auto u = all_single_stuck(1, 9);
  EXPECT_EQ(u.size(), 18u);
  EXPECT_THROW(all_single_stuck(5, 3), std::invalid_argument);
}

TEST(Inject, StuckAtClampsNode) {
  circuit::Netlist n;
  const circuit::NodeId a = n.node("victim");
  n.add<circuit::VoltageSource>(n.node("drv0"), circuit::kGround, 2.0);
  n.add<circuit::Resistor>(n.find_node("drv0"), a, 10e3);
  inject(n, FaultSpec::stuck_at(1, /*high=*/false),
         [](int) { return std::string("victim"); });
  const circuit::DcResult op = circuit::dc_operating_point(n);
  // 10 ohm clamp against a 10 kohm driver: node pinned near 0 V.
  EXPECT_NEAR(op.voltage("victim"), 0.0, 0.01);
}

TEST(Inject, StuckAt1ClampsHigh) {
  circuit::Netlist n;
  const circuit::NodeId a = n.node("victim");
  n.add<circuit::Resistor>(a, circuit::kGround, 10e3);
  inject(n, FaultSpec::stuck_at(1, /*high=*/true),
         [](int) { return std::string("victim"); });
  const circuit::DcResult op = circuit::dc_operating_point(n);
  EXPECT_NEAR(op.voltage("victim"), 5.0, 0.01);
}

TEST(Inject, BridgeTiesNodes) {
  circuit::Netlist n;
  const circuit::NodeId a = n.node("na");
  const circuit::NodeId b = n.node("nb");
  n.add<circuit::VoltageSource>(a, circuit::kGround, 4.0);
  n.add<circuit::Resistor>(b, circuit::kGround, 1e6);
  inject(n, FaultSpec::bridge(1, 2), [](int node) {
    return node == 1 ? std::string("na") : std::string("nb");
  });
  const circuit::DcResult op = circuit::dc_operating_point(n);
  // 50 ohm bridge against 1 Mohm to ground: nb pulled to ~4 V.
  EXPECT_NEAR(op.voltage("nb"), 4.0, 0.01);
}

TEST(Inject, DoubleStuckClampsBoth) {
  circuit::Netlist n;
  n.add<circuit::Resistor>(n.node("na"), circuit::kGround, 1e5);
  n.add<circuit::Resistor>(n.node("nb"), circuit::kGround, 1e5);
  inject(n, FaultSpec::double_stuck(1, 2, true), [](int node) {
    return node == 1 ? std::string("na") : std::string("nb");
  });
  const circuit::DcResult op = circuit::dc_operating_point(n);
  EXPECT_NEAR(op.voltage("na"), 5.0, 0.01);
  EXPECT_NEAR(op.voltage("nb"), 5.0, 0.01);
}

TEST(Inject, RequiresNodeMap) {
  circuit::Netlist n;
  n.node("x");
  EXPECT_THROW(inject(n, FaultSpec::stuck_at(1, false), nullptr),
               std::invalid_argument);
}

TEST(Inject, FaultOnOp1NodeChangesOperatingPoint) {
  // The mechanism end to end: inject SA0 at the OP1 bias node and verify
  // the DC operating point moves.
  circuit::Netlist clean_net;
  const analog::Op1Nodes nodes = analog::build_op1(clean_net);
  clean_net.add<circuit::VoltageSource>(clean_net.find_node(nodes.in_plus),
                                        circuit::kGround, 2.5);
  clean_net.add<circuit::VoltageSource>(clean_net.find_node(nodes.in_minus),
                                        circuit::kGround, 2.5);
  const double clean_bias = circuit::dc_operating_point(clean_net).voltage(nodes.bias_p);

  circuit::Netlist faulty_net;
  const analog::Op1Nodes fnodes = analog::build_op1(faulty_net);
  faulty_net.add<circuit::VoltageSource>(faulty_net.find_node(fnodes.in_plus),
                                         circuit::kGround, 2.5);
  faulty_net.add<circuit::VoltageSource>(faulty_net.find_node(fnodes.in_minus),
                                         circuit::kGround, 2.5);
  inject(faulty_net, FaultSpec::stuck_at(4, false),
         [fnodes](int k) { return fnodes.numbered(k); });
  const double faulty_bias =
      circuit::dc_operating_point(faulty_net).voltage(fnodes.bias_p);
  EXPECT_GT(clean_bias, 2.0);
  EXPECT_LT(faulty_bias, 0.1);
}

TEST(Campaign, CountsDetections) {
  const auto universe = sc_fault_universe();
  const CampaignReport rep = run_campaign(universe, [](const FaultSpec& f) {
    FaultResult r;
    r.fault = f;
    r.detected = f.kind != FaultKind::kBridge;  // pretend bridges escape
    return r;
  });
  EXPECT_EQ(rep.results.size(), 12u);
  EXPECT_EQ(rep.detected_count, 10u);
  EXPECT_NEAR(rep.coverage(), 10.0 / 12.0, 1e-12);
}

TEST(Campaign, EmptyUniverse) {
  const CampaignReport rep = run_campaign({}, [](const FaultSpec& f) {
    FaultResult r;
    r.fault = f;
    return r;
  });
  EXPECT_DOUBLE_EQ(rep.coverage(), 0.0);
}

}  // namespace
}  // namespace msbist::faults
