// Unit tests for fault models, universes, injection and campaigns.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "analog/opamp.h"
#include "circuit/dc.h"
#include "circuit/elements.h"
#include "faults/campaign.h"
#include "faults/fault.h"
#include "faults/universe.h"

namespace msbist::faults {
namespace {

TEST(Universe, Op1HasSixteenFaults) {
  const auto u = op1_fault_universe();
  EXPECT_EQ(u.size(), 16u);
  int singles = 0, doubles = 0;
  for (const auto& f : u) {
    if (f.kind == FaultKind::kStuckAt0 || f.kind == FaultKind::kStuckAt1) ++singles;
    if (f.kind == FaultKind::kDoubleStuck) ++doubles;
  }
  EXPECT_EQ(singles, 10);  // nodes 4, 5, 7, 8, 3 x two polarities
  EXPECT_EQ(doubles, 6);   // pairs 8-9, 5-8, 4-6 x two polarities
}

TEST(Universe, ScHasTwelveFaults) {
  const auto u = sc_fault_universe();
  EXPECT_EQ(u.size(), 12u);
  int singles = 0, bridges = 0;
  for (const auto& f : u) {
    if (f.kind == FaultKind::kStuckAt0 || f.kind == FaultKind::kStuckAt1) ++singles;
    if (f.kind == FaultKind::kBridge) ++bridges;
  }
  EXPECT_EQ(singles, 10);  // integrator nodes 4, 5, 7, 8, 9
  EXPECT_EQ(bridges, 2);   // 6-7 and 5-8
}

TEST(Universe, LabelsAreUnique) {
  for (const auto& universe : {op1_fault_universe(), sc_fault_universe()}) {
    std::vector<std::string> labels;
    for (const auto& f : universe) labels.push_back(f.label);
    std::sort(labels.begin(), labels.end());
    EXPECT_EQ(std::adjacent_find(labels.begin(), labels.end()), labels.end());
  }
}

TEST(Universe, AllSingleStuckRange) {
  const auto u = all_single_stuck(1, 9);
  EXPECT_EQ(u.size(), 18u);
  EXPECT_THROW(all_single_stuck(5, 3), std::invalid_argument);
}

TEST(Inject, StuckAtClampsNode) {
  circuit::Netlist n;
  const circuit::NodeId a = n.node("victim");
  n.add<circuit::VoltageSource>(n.node("drv0"), circuit::kGround, 2.0);
  n.add<circuit::Resistor>(n.find_node("drv0"), a, 10e3);
  inject(n, FaultSpec::stuck_at(1, /*high=*/false),
         [](int) { return std::string("victim"); });
  const circuit::DcResult op = circuit::dc_operating_point(n);
  // 10 ohm clamp against a 10 kohm driver: node pinned near 0 V.
  EXPECT_NEAR(op.voltage("victim"), 0.0, 0.01);
}

TEST(Inject, StuckAt1ClampsHigh) {
  circuit::Netlist n;
  const circuit::NodeId a = n.node("victim");
  n.add<circuit::Resistor>(a, circuit::kGround, 10e3);
  inject(n, FaultSpec::stuck_at(1, /*high=*/true),
         [](int) { return std::string("victim"); });
  const circuit::DcResult op = circuit::dc_operating_point(n);
  EXPECT_NEAR(op.voltage("victim"), 5.0, 0.01);
}

TEST(Inject, BridgeTiesNodes) {
  circuit::Netlist n;
  const circuit::NodeId a = n.node("na");
  const circuit::NodeId b = n.node("nb");
  n.add<circuit::VoltageSource>(a, circuit::kGround, 4.0);
  n.add<circuit::Resistor>(b, circuit::kGround, 1e6);
  inject(n, FaultSpec::bridge(1, 2), [](int node) {
    return node == 1 ? std::string("na") : std::string("nb");
  });
  const circuit::DcResult op = circuit::dc_operating_point(n);
  // 50 ohm bridge against 1 Mohm to ground: nb pulled to ~4 V.
  EXPECT_NEAR(op.voltage("nb"), 4.0, 0.01);
}

TEST(Inject, DoubleStuckClampsBoth) {
  circuit::Netlist n;
  n.add<circuit::Resistor>(n.node("na"), circuit::kGround, 1e5);
  n.add<circuit::Resistor>(n.node("nb"), circuit::kGround, 1e5);
  inject(n, FaultSpec::double_stuck(1, 2, true), [](int node) {
    return node == 1 ? std::string("na") : std::string("nb");
  });
  const circuit::DcResult op = circuit::dc_operating_point(n);
  EXPECT_NEAR(op.voltage("na"), 5.0, 0.01);
  EXPECT_NEAR(op.voltage("nb"), 5.0, 0.01);
}

TEST(Inject, RequiresNodeMap) {
  circuit::Netlist n;
  n.node("x");
  EXPECT_THROW(inject(n, FaultSpec::stuck_at(1, false), nullptr),
               std::invalid_argument);
}

TEST(Inject, FaultOnOp1NodeChangesOperatingPoint) {
  // The mechanism end to end: inject SA0 at the OP1 bias node and verify
  // the DC operating point moves.
  circuit::Netlist clean_net;
  const analog::Op1Nodes nodes = analog::build_op1(clean_net);
  clean_net.add<circuit::VoltageSource>(clean_net.find_node(nodes.in_plus),
                                        circuit::kGround, 2.5);
  clean_net.add<circuit::VoltageSource>(clean_net.find_node(nodes.in_minus),
                                        circuit::kGround, 2.5);
  const double clean_bias = circuit::dc_operating_point(clean_net).voltage(nodes.bias_p);

  circuit::Netlist faulty_net;
  const analog::Op1Nodes fnodes = analog::build_op1(faulty_net);
  faulty_net.add<circuit::VoltageSource>(faulty_net.find_node(fnodes.in_plus),
                                         circuit::kGround, 2.5);
  faulty_net.add<circuit::VoltageSource>(faulty_net.find_node(fnodes.in_minus),
                                         circuit::kGround, 2.5);
  inject(faulty_net, FaultSpec::stuck_at(4, false),
         [fnodes](int k) { return fnodes.numbered(k); });
  const double faulty_bias =
      circuit::dc_operating_point(faulty_net).voltage(fnodes.bias_p);
  EXPECT_GT(clean_bias, 2.0);
  EXPECT_LT(faulty_bias, 0.1);
}

TEST(Campaign, CountsDetections) {
  const auto universe = sc_fault_universe();
  const CampaignReport rep = run_campaign(universe, [](const FaultSpec& f) {
    FaultResult r;
    r.fault = f;
    r.detected = f.kind != FaultKind::kBridge;  // pretend bridges escape
    return r;
  });
  EXPECT_EQ(rep.results.size(), 12u);
  EXPECT_EQ(rep.detected_count, 10u);
  EXPECT_NEAR(rep.coverage(), 10.0 / 12.0, 1e-12);
}

TEST(Campaign, EmptyUniverse) {
  const CampaignReport rep = run_campaign({}, [](const FaultSpec& f) {
    FaultResult r;
    r.fault = f;
    return r;
  });
  EXPECT_DOUBLE_EQ(rep.coverage(), 0.0);
}

// --- Parallel engine ---

// Deterministic probe: every outcome field derives from the spec alone, so
// serial and parallel campaigns must agree bit for bit.
FaultResult deterministic_probe(const FaultSpec& f) {
  FaultResult r;
  r.fault = f;
  r.score = 10.0 * f.node_a + f.node_b + (f.stuck_high ? 0.5 : 0.0);
  r.detected = f.kind != FaultKind::kBridge;
  r.detail = "probe:" + f.label;
  return r;
}

std::vector<FaultSpec> combined_universe() {
  std::vector<FaultSpec> u = op1_fault_universe();
  const auto sc = sc_fault_universe();
  u.insert(u.end(), sc.begin(), sc.end());
  return u;
}

TEST(CampaignParallel, MatchesSerialAtAnyThreadCount) {
  const auto universe = combined_universe();
  const CampaignReport serial = run_campaign(universe, deterministic_probe);
  for (std::size_t threads : {1u, 2u, 8u}) {
    CampaignOptions opts;
    opts.threads = threads;
    const CampaignReport par =
        run_campaign_parallel(universe, deterministic_probe, opts);
    EXPECT_EQ(par.canonical_outcomes(), serial.canonical_outcomes())
        << "threads=" << threads;
    EXPECT_EQ(par.results.size(), serial.results.size());
    EXPECT_EQ(par.detected_count, serial.detected_count);
    ASSERT_EQ(par.results.size(), universe.size());
    for (std::size_t i = 0; i < universe.size(); ++i) {
      EXPECT_EQ(par.results[i].fault.label, universe[i].label);  // order
      EXPECT_DOUBLE_EQ(par.results[i].score, serial.results[i].score);
    }
  }
}

TEST(CampaignParallel, EmptyUniverse) {
  const CampaignReport rep = run_campaign_parallel({}, deterministic_probe);
  EXPECT_TRUE(rep.results.empty());
  EXPECT_DOUBLE_EQ(rep.coverage(), 0.0);
}

TEST(CampaignParallel, ZeroThreadsUsesHardwareConcurrency) {
  CampaignOptions opts;
  opts.threads = 0;
  const CampaignReport rep =
      run_campaign_parallel(sc_fault_universe(), deterministic_probe, opts);
  EXPECT_GE(rep.threads_used, 1u);
  EXPECT_EQ(rep.results.size(), 12u);
}

// A throwing test is a per-fault failure, not a campaign abort — and the
// serial and parallel engines capture it identically.
FaultResult throwing_probe(const FaultSpec& f) {
  if (f.kind == FaultKind::kBridge) {
    throw std::runtime_error("solver exploded on " + f.label);
  }
  return deterministic_probe(f);
}

TEST(Campaign, SerialIsolatesThrowingTest) {
  const auto universe = sc_fault_universe();
  const CampaignReport rep = run_campaign(universe, throwing_probe);
  ASSERT_EQ(rep.results.size(), 12u);
  EXPECT_EQ(rep.detected_count, 10u);
  EXPECT_EQ(rep.errored_count, 2u);
  for (const auto& r : rep.results) {
    if (r.fault.kind == FaultKind::kBridge) {
      EXPECT_FALSE(r.detected);
      EXPECT_TRUE(r.errored);
      EXPECT_EQ(r.detail, "solver exploded on " + r.fault.label);
    } else {
      EXPECT_FALSE(r.errored);
    }
  }
}

TEST(CampaignParallel, IsolatesThrowingTestIdenticallyToSerial) {
  const auto universe = sc_fault_universe();
  const CampaignReport serial = run_campaign(universe, throwing_probe);
  CampaignOptions opts;
  opts.threads = 4;
  const CampaignReport par =
      run_campaign_parallel(universe, throwing_probe, opts);
  EXPECT_EQ(par.canonical_outcomes(), serial.canonical_outcomes());
  EXPECT_EQ(par.errored_count, 2u);
}

TEST(CampaignParallel, TimeoutMarksFaultAndCampaignSurvives) {
  using namespace std::chrono_literals;
  const auto universe = op1_fault_universe();
  const std::string hung_label = universe[3].label;
  // Capture by value: a timed-out test's thread runs on past the budget
  // (it is joined by the campaign before the report returns).
  const FaultTestFn probe = [hung_label](const FaultSpec& f) {
    if (f.label == hung_label) std::this_thread::sleep_for(300ms);
    return deterministic_probe(f);
  };
  CampaignOptions opts;
  opts.threads = 2;
  opts.per_fault_timeout = 20ms;
  const CampaignReport rep = run_campaign_parallel(universe, probe, opts);
  ASSERT_EQ(rep.results.size(), universe.size());
  EXPECT_EQ(rep.timed_out_count, 1u);
  for (const auto& r : rep.results) {
    if (r.fault.label == hung_label) {
      EXPECT_TRUE(r.timed_out);
      EXPECT_FALSE(r.detected);
      EXPECT_NE(r.detail.find("timed out"), std::string::npos);
    } else {
      EXPECT_FALSE(r.timed_out);
      EXPECT_EQ(r.detected, deterministic_probe(r.fault).detected);
    }
  }
}

TEST(Campaign, TimedOutWorkersAreJoinedBeforeReturn) {
  using namespace std::chrono_literals;
  // Regression: timed-out workers used to be detach()ed, so they could
  // outlive the campaign — or the whole process — while still touching
  // closure state. The campaign now owns a reaper that joins every
  // abandoned worker before the report returns: each worker's increment
  // below is sequenced before run_campaign* returns, so the counter must
  // read the full universe immediately afterwards.
  const auto universe = all_single_stuck(1, 3);  // 6 faults
  for (const bool parallel : {false, true}) {
    auto finished = std::make_shared<std::atomic<std::size_t>>(0);
    const FaultTestFn probe = [finished](const FaultSpec& f) {
      std::this_thread::sleep_for(100ms);
      finished->fetch_add(1, std::memory_order_relaxed);
      FaultResult r;
      r.fault = f;
      r.detected = true;
      return r;
    };
    CampaignOptions opts;
    opts.threads = 2;
    opts.per_fault_timeout = 5ms;
    const CampaignReport rep =
        parallel ? run_campaign_parallel(universe, probe, opts)
                 : run_campaign(universe, probe, opts);
    EXPECT_EQ(rep.timed_out_count, universe.size());
    EXPECT_EQ(finished->load(), universe.size())
        << (parallel ? "parallel" : "serial");
    // Timed-out faults spend *waiting* wall time, not measured compute:
    // they are excluded from cpu_seconds entirely.
    EXPECT_EQ(rep.cpu_seconds, 0.0);
  }
}

TEST(Campaign, ProgressCallbackFiresOncePerFault) {
  const auto universe = combined_universe();
  for (const bool parallel : {false, true}) {
    std::vector<std::size_t> completed_values;
    std::size_t total_seen = 0;
    CampaignOptions opts;
    opts.threads = 4;
    // The engine serialises progress invocations, so no locking needed.
    opts.progress = [&](std::size_t completed, std::size_t total,
                        const FaultResult& r) {
      completed_values.push_back(completed);
      total_seen = total;
      EXPECT_FALSE(r.fault.label.empty());
    };
    const CampaignReport rep =
        parallel ? run_campaign_parallel(universe, deterministic_probe, opts)
                 : run_campaign(universe, deterministic_probe, opts);
    EXPECT_EQ(rep.results.size(), universe.size());
    ASSERT_EQ(completed_values.size(), universe.size()) << "parallel=" << parallel;
    EXPECT_EQ(total_seen, universe.size());
    // `completed` is the running count 1..n in invocation order.
    for (std::size_t i = 0; i < completed_values.size(); ++i) {
      EXPECT_EQ(completed_values[i], i + 1);
    }
  }
}

TEST(Campaign, StopOnFirstUndetectedMatchesBetweenEngines) {
  const auto universe = all_single_stuck(1, 30);  // 60 faults
  // First undetected fault is at universe index 17 (node 9, stuck-at-1).
  const FaultTestFn probe = [](const FaultSpec& f) {
    FaultResult r = deterministic_probe(f);
    r.detected = !(f.node_a == 9 && f.stuck_high) && f.node_a != 20;
    return r;
  };
  const CampaignReport serial = [&] {
    CampaignOptions opts;
    opts.stop_on_first_undetected = true;
    return run_campaign(universe, probe, opts);
  }();
  ASSERT_EQ(serial.results.size(), 18u);
  EXPECT_FALSE(serial.results.back().detected);
  for (std::size_t threads : {2u, 8u}) {
    CampaignOptions opts;
    opts.threads = threads;
    opts.stop_on_first_undetected = true;
    const CampaignReport par = run_campaign_parallel(universe, probe, opts);
    EXPECT_EQ(par.canonical_outcomes(), serial.canonical_outcomes())
        << "threads=" << threads;
  }
}

TEST(Campaign, ReportsElapsedAndThroughput) {
  const auto universe = sc_fault_universe();
  const CampaignReport rep = run_campaign(universe, deterministic_probe);
  EXPECT_GT(rep.wall_seconds, 0.0);
  EXPECT_GE(rep.cpu_seconds, 0.0);
  EXPECT_GT(rep.faults_per_second(), 0.0);
  for (const auto& r : rep.results) EXPECT_GE(r.elapsed_seconds, 0.0);
  const std::string summary = rep.throughput_summary();
  EXPECT_NE(summary.find("12 faults"), std::string::npos);
  EXPECT_NE(summary.find("faults/s"), std::string::npos);
}

}  // namespace
}  // namespace msbist::faults
