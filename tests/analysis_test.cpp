// Netlist ERC static-analysis tests: one crafted bad netlist per rule, a
// clean-netlist no-diagnostic case, enforcement at the dc/transient entry
// points, and the post-fault-injection re-check.
#include <gtest/gtest.h>

#include "analysis/passes.h"
#include "analysis/runner.h"
#include "circuit/dc.h"
#include "circuit/elements.h"
#include "circuit/mos.h"
#include "circuit/transient.h"
#include "faults/fault.h"

namespace {

using namespace msbist;
using analysis::Severity;
using circuit::kGround;

bool has_rule(const analysis::Report& r, const std::string& rule, Severity sev) {
  for (const auto& d : r.for_rule(rule)) {
    if (d.severity == sev) return true;
  }
  return false;
}

/// Healthy resistive divider driven by a source, with a decoupling cap.
circuit::Netlist clean_divider() {
  circuit::Netlist n;
  const auto in = n.node("in");
  const auto mid = n.node("mid");
  n.add<circuit::VoltageSource>(in, kGround, 5.0);
  n.name_last("Vin");
  n.add<circuit::Resistor>(in, mid, 1e3);
  n.name_last("R1");
  n.add<circuit::Resistor>(mid, kGround, 1e3);
  n.name_last("R2");
  n.add<circuit::Capacitor>(mid, kGround, 1e-9);
  n.name_last("C1");
  return n;
}

TEST(AnalysisErc, CleanNetlistProducesNoDiagnostics) {
  const circuit::Netlist n = clean_divider();
  const analysis::Report r = analysis::check(n);
  EXPECT_TRUE(r.empty()) << r.format();
  // And the full standard pipeline ran (six passes).
  EXPECT_EQ(analysis::Runner::standard().passes().size(), 6u);
}

TEST(AnalysisErc, OrphanNodeIsAnError) {
  circuit::Netlist n = clean_divider();
  n.node("orphan");
  const analysis::Report r = analysis::check(n);
  EXPECT_TRUE(has_rule(r, "floating-node", Severity::kError)) << r.format();
  EXPECT_EQ(r.for_rule("floating-node").front().node, "orphan");
}

TEST(AnalysisErc, DanglingNodeIsAWarning) {
  circuit::Netlist n = clean_divider();
  // One resistor end in the air: solvable, but no current can flow.
  n.add<circuit::Resistor>(n.find_node("mid"), n.node("stub"), 10e3);
  const analysis::Report r = analysis::check(n);
  EXPECT_TRUE(has_rule(r, "floating-node", Severity::kWarning)) << r.format();
  EXPECT_FALSE(r.has_errors());
}

TEST(AnalysisErc, CapacitorOnlyIslandHasNoDcPath) {
  circuit::Netlist n = clean_divider();
  const auto island = n.node("island");
  n.add<circuit::Capacitor>(n.find_node("mid"), island, 1e-12);
  n.add<circuit::Capacitor>(island, kGround, 1e-12);
  const analysis::Report r = analysis::check(n);
  EXPECT_TRUE(has_rule(r, "dc-path", Severity::kError)) << r.format();
  EXPECT_EQ(r.for_rule("dc-path").front().node, "island");
}

TEST(AnalysisErc, CurrentSourceOnlyNodeHasNoDcPath) {
  circuit::Netlist n;
  const auto a = n.node("a");
  n.add<circuit::CurrentSource>(kGround, a, 1e-3);
  n.add<circuit::Capacitor>(a, kGround, 1e-9);
  const analysis::Report r = analysis::check(n);
  EXPECT_TRUE(has_rule(r, "dc-path", Severity::kError)) << r.format();
}

TEST(AnalysisErc, ParallelVoltageSourcesConflict) {
  circuit::Netlist n = clean_divider();
  n.add<circuit::VoltageSource>(n.find_node("in"), kGround, 3.3);
  n.name_last("Vdup");
  const analysis::Report r = analysis::check(n);
  EXPECT_TRUE(has_rule(r, "source-loop", Severity::kError)) << r.format();
}

TEST(AnalysisErc, SelfShortedSourceIsAnError) {
  circuit::Netlist n = clean_divider();
  const auto in = n.find_node("in");
  n.add<circuit::VoltageSource>(in, in, 1.0);
  n.name_last("Vshort");
  const analysis::Report r = analysis::check(n);
  EXPECT_TRUE(has_rule(r, "source-loop", Severity::kError)) << r.format();
  bool found = false;
  for (const auto& d : r.for_rule("source-loop")) {
    if (d.element == "Vshort") found = true;
  }
  EXPECT_TRUE(found) << r.format();
}

TEST(AnalysisErc, VcvsLoopWithSourceConflicts) {
  // V1 pins (a - gnd); the VCVS output also pins (a - gnd): a 2-cycle of
  // ideal voltage constraints through different element types.
  circuit::Netlist n;
  const auto a = n.node("a");
  const auto s = n.node("s");
  n.add<circuit::VoltageSource>(s, kGround, 1.0);
  n.add<circuit::Resistor>(s, kGround, 1e3);
  n.add<circuit::VoltageSource>(a, kGround, 2.0);
  n.add<circuit::Vcvs>(a, kGround, s, kGround, 10.0);
  const analysis::Report r = analysis::check(n);
  EXPECT_TRUE(has_rule(r, "source-loop", Severity::kError)) << r.format();
}

TEST(AnalysisErc, DisconnectedSubgraphIsFlagged) {
  circuit::Netlist n = clean_divider();
  const auto x = n.node("x");
  const auto y = n.node("y");
  n.add<circuit::Resistor>(x, y, 1e3);  // island never referencing ground
  const analysis::Report r = analysis::check(n);
  EXPECT_TRUE(has_rule(r, "connectivity", Severity::kWarning)) << r.format();
  // Each island node also fails the dc-path check.
  EXPECT_EQ(r.for_rule("dc-path").size(), 2u) << r.format();
}

TEST(AnalysisErc, DuplicateElementNamesAreAnError) {
  circuit::Netlist n = clean_divider();
  n.add<circuit::Resistor>(n.find_node("in"), kGround, 2e3);
  n.name_last("R1");  // collides with the divider's R1
  const analysis::Report r = analysis::check(n);
  EXPECT_TRUE(has_rule(r, "duplicate-name", Severity::kError)) << r.format();
  EXPECT_EQ(r.for_rule("duplicate-name").front().element, "R1");
}

TEST(AnalysisErc, DegenerateMosGeometry) {
  circuit::Netlist n;
  const auto vdd = n.node("vdd");
  const auto out = n.node("out");
  n.add<circuit::VoltageSource>(vdd, kGround, 5.0);
  n.add<circuit::Resistor>(vdd, out, 10e3);
  // The constructor validates kp/W-L, but params() is mutable and the
  // parametric-fault injector degrades devices in place — the ERC is the
  // backstop for a degradation that goes all the way to zero.
  auto* m = n.add<circuit::Mosfet>(circuit::MosType::kNmos, out, vdd, kGround,
                                   circuit::MosParams::nmos_5um(10.0));
  m->params().w_over_l = 0.0;
  const analysis::Report r = analysis::check(n);
  EXPECT_TRUE(has_rule(r, "mos-geometry", Severity::kError)) << r.format();
}

TEST(AnalysisErc, ShortedMosChannelIsAWarning) {
  circuit::Netlist n;
  const auto vdd = n.node("vdd");
  n.add<circuit::VoltageSource>(vdd, kGround, 5.0);
  n.add<circuit::Mosfet>(circuit::MosType::kNmos, vdd, vdd, vdd,
                         circuit::MosParams::nmos_5um(10.0));
  const analysis::Report r = analysis::check(n);
  EXPECT_TRUE(has_rule(r, "mos-geometry", Severity::kWarning)) << r.format();
}

TEST(AnalysisErc, TestabilityFlagsNodesBehindCurrentOutputs) {
  // A Vccs-driven stage is electrically fine but invisible from the tap:
  // signal cannot conduct back through a current output, and the ground
  // rail sinks it. This is the generalized ramp-gain-masking blind spot.
  circuit::Netlist n;
  const auto in = n.node("in");
  const auto mid = n.node("mid");
  const auto out = n.node("out");
  n.add<circuit::VoltageSource>(in, kGround, 1.0);
  n.add<circuit::Resistor>(in, mid, 1e3);
  n.add<circuit::Resistor>(mid, kGround, 1e3);
  n.add<circuit::Vccs>(out, kGround, mid, kGround, 1e-3);
  n.add<circuit::Resistor>(out, kGround, 10e3);
  const analysis::Report r = analysis::Runner::with_testability({"mid"}).run(n);
  const auto blind = r.for_rule("testability");
  ASSERT_EQ(blind.size(), 1u) << r.format();
  EXPECT_EQ(blind.front().node, "out");
  EXPECT_EQ(blind.front().severity, Severity::kWarning);

  // Observing the output directly clears the blind spot ("in" stays
  // reachable through R1-R2).
  const analysis::Report r2 = analysis::Runner::with_testability({"out", "mid"}).run(n);
  EXPECT_TRUE(r2.for_rule("testability").empty()) << r2.format();
}

TEST(AnalysisErc, TestabilityHandlesBadTapLists) {
  const circuit::Netlist n = clean_divider();
  const analysis::Report none =
      analysis::Runner::with_testability(std::vector<std::string>{}).run(n);
  EXPECT_TRUE(has_rule(none, "testability", Severity::kInfo));
  const analysis::Report typo = analysis::Runner::with_testability({"nope"}).run(n);
  EXPECT_TRUE(has_rule(typo, "testability", Severity::kWarning));
}

TEST(AnalysisErc, DcEntryPointRejectsBadNetlist) {
  circuit::Netlist n = clean_divider();
  const auto island = n.node("island");
  n.add<circuit::Capacitor>(island, kGround, 1e-12);
  try {
    circuit::dc_operating_point(n);
    FAIL() << "expected ErcError";
  } catch (const analysis::ErcError& e) {
    EXPECT_TRUE(has_rule(e.report(), "dc-path", Severity::kError));
    EXPECT_NE(std::string(e.what()).find("dc-path"), std::string::npos);
  }
}

TEST(AnalysisErc, TransientEntryPointRejectsBadNetlist) {
  circuit::Netlist n = clean_divider();
  n.node("orphan");
  circuit::TransientOptions topts;
  topts.dt = 1e-6;
  topts.t_stop = 1e-5;
  EXPECT_THROW(circuit::transient(n, topts), analysis::ErcError);
}

TEST(AnalysisErc, ErcOptOutStillSolvesViaGmin) {
  // The gmin leak makes a capacitor-only island numerically solvable, so
  // opting out of the ERC must reproduce the old (pre-ERC) behaviour.
  circuit::Netlist n = clean_divider();
  const auto island = n.node("island");
  n.add<circuit::Capacitor>(island, kGround, 1e-12);
  circuit::DcOptions opts;
  opts.erc = false;
  const circuit::DcResult op = circuit::dc_operating_point(n, opts);
  EXPECT_NEAR(op.voltage("mid"), 2.5, 1e-6);
  EXPECT_THROW(circuit::dc_operating_point(n), analysis::ErcError);
}

TEST(AnalysisErc, FaultInjectionRecheckStaysCleanOnHealthyCircuit) {
  circuit::Netlist n = clean_divider();
  const auto map = [](int) { return std::string("mid"); };
  const analysis::Report r = faults::inject(n, faults::FaultSpec::stuck_at(1, false), map);
  EXPECT_FALSE(r.has_errors()) << r.format();
  // The clamped circuit still simulates: mid is pulled near 0 V.
  const circuit::DcResult op = circuit::dc_operating_point(n);
  EXPECT_LT(op.voltage("mid"), 0.1);
}

TEST(AnalysisErc, DoubleInjectionIsCaughtByRecheck) {
  // Injecting the same fault twice duplicates the clamp element names —
  // the re-check report distinguishes this campaign bug from a solver
  // failure before any simulation runs.
  circuit::Netlist n = clean_divider();
  const auto map = [](int) { return std::string("mid"); };
  const faults::FaultSpec f = faults::FaultSpec::stuck_at(1, true);
  EXPECT_FALSE(faults::inject(n, f, map).has_errors());
  const analysis::Report again = faults::inject(n, f, map);
  EXPECT_TRUE(has_rule(again, "duplicate-name", Severity::kError)) << again.format();
  EXPECT_TRUE(has_rule(again, "source-loop", Severity::kError)) << again.format();
  EXPECT_THROW(circuit::dc_operating_point(n), analysis::ErcError);
}

}  // namespace
