// Unit tests for z-domain transfer functions and polynomial utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>

#include "dsp/polynomial.h"
#include "dsp/vec.h"
#include "dsp/ztransfer.h"

namespace msbist::dsp {
namespace {

TEST(Polynomial, Polyval) {
  // 2x^2 - 3x + 1 at x = 2 -> 3.
  EXPECT_DOUBLE_EQ(polyval({2.0, -3.0, 1.0}, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(polyval({}, 5.0), 0.0);
}

TEST(Polynomial, FromRootsReal) {
  // (x-1)(x+2) = x^2 + x - 2.
  const Poly p = poly_from_roots({{1.0, 0.0}, {-2.0, 0.0}});
  ASSERT_EQ(p.size(), 3u);
  EXPECT_NEAR(p[0], 1.0, 1e-12);
  EXPECT_NEAR(p[1], 1.0, 1e-12);
  EXPECT_NEAR(p[2], -2.0, 1e-12);
}

TEST(Polynomial, FromRootsConjugatePair) {
  // (x - (1+2i))(x - (1-2i)) = x^2 - 2x + 5.
  const Poly p = poly_from_roots({{1.0, 2.0}, {1.0, -2.0}});
  EXPECT_NEAR(p[1], -2.0, 1e-12);
  EXPECT_NEAR(p[2], 5.0, 1e-12);
}

TEST(Polynomial, UnpairedComplexRootThrows) {
  EXPECT_THROW(poly_from_roots({{1.0, 2.0}}), std::invalid_argument);
}

TEST(Polynomial, RootsRoundTrip) {
  const std::vector<std::complex<double>> roots{
      {-1.0, 0.0}, {-3.0, 0.0}, {-2.0, 1.5}, {-2.0, -1.5}};
  const Poly p = poly_from_roots(roots);
  auto found = poly_roots(p);
  // Every original root must be matched by a computed one.
  for (const auto& r : roots) {
    double best = 1e9;
    for (const auto& f : found) best = std::min(best, std::abs(f - r));
    EXPECT_LT(best, 1e-8);
  }
}

TEST(Polynomial, RootsOfQuadratic) {
  // x^2 - 5x + 6 -> roots 2, 3.
  auto r = poly_roots({1.0, -5.0, 6.0});
  ASSERT_EQ(r.size(), 2u);
  const double lo = std::min(r[0].real(), r[1].real());
  const double hi = std::max(r[0].real(), r[1].real());
  EXPECT_NEAR(lo, 2.0, 1e-10);
  EXPECT_NEAR(hi, 3.0, 1e-10);
}

TEST(Polynomial, ConstantThrows) {
  EXPECT_THROW(poly_roots({5.0}), std::invalid_argument);
  EXPECT_THROW(poly_roots({0.0, 0.0}), std::invalid_argument);
}

TEST(Polynomial, MulMatchesConvolution) {
  const Poly a{1.0, 2.0};
  const Poly b{1.0, -1.0, 3.0};
  const Poly p = poly_mul(a, b);
  // (x+2)(x^2-x+3) = x^3 + x^2 + x + 6.
  const Poly expect{1.0, 1.0, 1.0, 6.0};
  EXPECT_TRUE(approx_equal(p, expect, 1e-12));
}

TEST(Polynomial, Derivative) {
  // d/dx (3x^3 + 2x - 7) = 9x^2 + 2.
  const Poly d = poly_derivative({3.0, 0.0, 2.0, -7.0});
  EXPECT_TRUE(approx_equal(d, {9.0, 0.0, 2.0}, 1e-12));
}

TEST(ZTransfer, RejectsZeroLeadingDen) {
  EXPECT_THROW(ZTransfer({1.0}, {0.0, 1.0}), std::invalid_argument);
}

TEST(ZTransfer, ScIntegratorImpulseIsDelayedStep) {
  // H(z) = z^-1/(k(1-z^-1)): impulse response 0, 1/k, 1/k, ... (accumulator).
  const double k = 6.8;
  const auto h = ZTransfer::sc_integrator(k).impulse(6);
  EXPECT_NEAR(h[0], 0.0, 1e-15);
  for (std::size_t i = 1; i < h.size(); ++i) EXPECT_NEAR(h[i], 1.0 / k, 1e-12);
}

TEST(ZTransfer, ScIntegratorStepIsRamp) {
  const double k = 6.8;
  const auto y = ZTransfer::sc_integrator(k).step(5);
  for (std::size_t n = 0; n < y.size(); ++n) {
    EXPECT_NEAR(y[n], static_cast<double>(n) / k, 1e-12) << "n=" << n;
  }
}

TEST(ZTransfer, ScIntegratorPoleAtUnity) {
  const auto p = ZTransfer::sc_integrator().poles();
  ASSERT_EQ(p.size(), 1u);
  EXPECT_NEAR(p[0].real(), 1.0, 1e-12);
  EXPECT_NEAR(p[0].imag(), 0.0, 1e-12);
  EXPECT_FALSE(ZTransfer::sc_integrator().is_stable());
}

TEST(ZTransfer, FilterLinearity) {
  const ZTransfer h({0.5, 0.25}, {1.0, -0.3});
  std::vector<double> u1{1.0, 0.0, -1.0, 2.0, 0.5};
  std::vector<double> u2{0.0, 1.0, 1.0, -1.0, 0.25};
  const auto lhs = h.filter(add(u1, u2));
  const auto rhs = add(h.filter(u1), h.filter(u2));
  EXPECT_TRUE(approx_equal(lhs, rhs, 1e-12));
}

TEST(ZTransfer, FirstOrderLowpassDcGainIsUnity) {
  const ZTransfer h = ZTransfer::first_order_lowpass(1000.0, 1e-5);
  const auto H0 = h.frequency_response(0.0);
  EXPECT_NEAR(std::abs(H0), 1.0, 1e-9);
  EXPECT_TRUE(h.is_stable());
}

TEST(ZTransfer, LowpassAttenuatesAtCutoff) {
  const double fc = 1000.0, dt = 1e-5;
  const ZTransfer h = ZTransfer::first_order_lowpass(fc, dt);
  const double w = 2.0 * std::numbers::pi * fc * dt;
  // -3 dB at the cutoff (bilinear without prewarp is near-exact well
  // below Nyquist; fc/fs = 0.01 here).
  EXPECT_NEAR(std::abs(h.frequency_response(w)), 1.0 / std::sqrt(2.0), 1e-3);
}

TEST(ZTransfer, FrequencyResponseMatchesFilterOnSine) {
  const ZTransfer h({0.2, 0.3}, {1.0, -0.5});
  const double w = 0.3;
  const std::size_t n = 4000;
  std::vector<double> u(n);
  for (std::size_t i = 0; i < n; ++i) u[i] = std::cos(w * static_cast<double>(i));
  const auto y = h.filter(u);
  const auto H = h.frequency_response(w);
  // After the transient dies out, output amplitude = |H|.
  double peak = 0.0;
  for (std::size_t i = n - 200; i < n; ++i) peak = std::max(peak, std::abs(y[i]));
  EXPECT_NEAR(peak, std::abs(H), 1e-3);
}

TEST(ZTransfer, StepOfStableSystemSettlesToDcGain) {
  const ZTransfer h({0.4}, {1.0, -0.6});
  const auto y = h.step(200);
  EXPECT_NEAR(y.back(), std::abs(h.frequency_response(0.0)), 1e-9);
}

}  // namespace
}  // namespace msbist::dsp
