// Property-based and cross-module integration tests: parameterized sweeps
// over fault universes, die seeds, and algebraic invariants of the
// substrates.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "adc/dual_slope.h"
#include "adc/metrics.h"
#include "production/stats.h"
#include "circuit/dc.h"
#include "circuit/elements.h"
#include "core/device.h"
#include "digital/fsm.h"
#include "digital/signature.h"
#include "dsp/correlation.h"
#include "dsp/prbs.h"
#include "dsp/vec.h"
#include "faults/universe.h"
#include "tsrt/impulse_compare.h"
#include "tsrt/pole_compare.h"
#include "tsrt/transient_test.h"

namespace msbist {
namespace {

// --- Figure 4 as a property: every paper fault is observable ---

class Op1FaultSweep : public ::testing::TestWithParam<std::size_t> {
 protected:
  static const tsrt::TsrtRun& golden() {
    static const tsrt::TsrtRun run = tsrt::run_transient_test(
        tsrt::CircuitKind::kOp1Follower, std::nullopt,
        tsrt::paper_options(tsrt::CircuitKind::kOp1Follower));
    return run;
  }
};

TEST_P(Op1FaultSweep, DetectedByVoltageOrCurrentSignature) {
  const auto universe = faults::op1_fault_universe();
  const auto& fault = universe[GetParam()];
  const tsrt::TsrtRun faulty = tsrt::run_transient_test(
      tsrt::CircuitKind::kOp1Follower, fault,
      tsrt::paper_options(tsrt::CircuitKind::kOp1Follower));
  const double combined = tsrt::combined_detection_percent(golden(), faulty);
  EXPECT_GT(combined, 30.0) << fault.label;
}

INSTANTIATE_TEST_SUITE_P(AllSixteenFaults, Op1FaultSweep,
                         ::testing::Range<std::size_t>(0, 16));

class ScFaultSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScFaultSweep, Circuit3FaultShiftsModelOrCurrent) {
  const auto universe = faults::sc_fault_universe();
  const auto& fault = universe[GetParam()];
  const tsrt::TsrtOptions opts =
      tsrt::paper_options(tsrt::CircuitKind::kScIntegratorAlone);
  static const tsrt::TsrtRun golden = tsrt::run_transient_test(
      tsrt::CircuitKind::kScIntegratorAlone, std::nullopt, opts);
  static const tsrt::ArxFit gfit = tsrt::fit_sc_cycles(
      golden.stimulus, golden.response, golden.dt, tsrt::kScCycleSeconds, 2.5);
  const tsrt::TsrtRun faulty =
      tsrt::run_transient_test(tsrt::CircuitKind::kScIntegratorAlone, fault, opts);
  const tsrt::ArxFit ffit = tsrt::fit_sc_cycles(
      faulty.stimulus, faulty.response, faulty.dt, tsrt::kScCycleSeconds, 2.5);
  const double det = std::max(tsrt::impulse_detection_percent(gfit, ffit),
                              tsrt::idd_detection_percent(golden, faulty));
  EXPECT_GT(det, 30.0) << fault.label;
}

INSTANTIATE_TEST_SUITE_P(AllTwelveFaults, ScFaultSweep,
                         ::testing::Range<std::size_t>(0, 12));

// --- Batch yield as a property over lot seeds ---

class LotSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LotSweep, HealthyLotsAlwaysYieldFully) {
  core::Batch batch(4, GetParam(), adc::DualSlopeAdcConfig::characterized());
  const auto res = batch.run_production_test();
  EXPECT_TRUE(res.all_passed()) << "lot seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(SeveralLots, LotSweep,
                         ::testing::Values(7ull, 99ull, 1234ull, 777777ull));

// --- PRBS m-sequence autocorrelation property ---

class PrbsAutocorr : public ::testing::TestWithParam<unsigned> {};

TEST_P(PrbsAutocorr, TwoValuedCyclicAutocorrelation) {
  // Mapped to +/-1, a maximal sequence's cyclic autocorrelation is N at
  // zero shift and exactly -1 at every other shift.
  dsp::Prbs gen(GetParam());
  const auto bits = gen.full_period();
  const auto n = static_cast<std::ptrdiff_t>(bits.size());
  for (std::ptrdiff_t shift = 0; shift < n; ++shift) {
    long acc = 0;
    for (std::ptrdiff_t i = 0; i < n; ++i) {
      const int a = bits[static_cast<std::size_t>(i)] ? 1 : -1;
      const int b = bits[static_cast<std::size_t>((i + shift) % n)] ? 1 : -1;
      acc += a * b;
    }
    if (shift == 0) {
      EXPECT_EQ(acc, n);
    } else {
      EXPECT_EQ(acc, -1) << "shift " << shift;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SeveralWidths, PrbsAutocorr,
                         ::testing::Values(4u, 5u, 7u, 9u));

// --- MISR aliasing property ---

TEST(MisrProperty, RandomSingleBitCorruptionsAlwaysCaught) {
  // Single-bit errors are never aliased by a 16-bit MISR over short
  // streams (aliasing needs compensating corruption).
  std::mt19937_64 rng(2024);
  std::uniform_int_distribution<std::size_t> pos(0, 9);
  std::uniform_int_distribution<int> bit(0, 9);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint32_t> stream(10);
    for (auto& w : stream) w = static_cast<std::uint32_t>(rng() & 0x3FF);
    digital::Misr clean;
    clean.compact_all(stream);
    auto corrupted = stream;
    corrupted[pos(rng)] ^= 1u << bit(rng);
    if (corrupted == stream) continue;
    digital::Misr dirty;
    dirty.compact_all(corrupted);
    EXPECT_NE(clean.signature(), dirty.signature()) << "trial " << trial;
  }
}

// --- MNA algebraic invariants ---

TEST(MnaProperty, SuperpositionOnLinearNetwork) {
  // Solve with each source alone and with both: responses must add.
  auto solve_with = [](double v1, double i2) {
    circuit::Netlist n;
    const auto a = n.node("a");
    const auto b = n.node("b");
    n.add<circuit::VoltageSource>(a, circuit::kGround, v1);
    n.add<circuit::Resistor>(a, b, 1e3);
    n.add<circuit::Resistor>(b, circuit::kGround, 2e3);
    n.add<circuit::CurrentSource>(circuit::kGround, b, i2);
    return circuit::dc_operating_point(n).voltage("b");
  };
  const double both = solve_with(3.0, 1e-3);
  const double only_v = solve_with(3.0, 0.0);
  const double only_i = solve_with(0.0, 1e-3);
  EXPECT_NEAR(both, only_v + only_i, 1e-9);
}

TEST(MnaProperty, ReciprocityOfResistiveNetwork) {
  // In a reciprocal (R-only) two-port, a current injected at port 1
  // produces the same voltage at port 2 as the reverse experiment.
  auto transfer = [](bool forward) {
    circuit::Netlist n;
    const auto p1 = n.node("p1");
    const auto p2 = n.node("p2");
    const auto mid = n.node("mid");
    n.add<circuit::Resistor>(p1, mid, 1.7e3);
    n.add<circuit::Resistor>(mid, p2, 3.1e3);
    n.add<circuit::Resistor>(mid, circuit::kGround, 2.2e3);
    n.add<circuit::Resistor>(p1, circuit::kGround, 5e3);
    n.add<circuit::Resistor>(p2, circuit::kGround, 4e3);
    n.add<circuit::CurrentSource>(circuit::kGround, forward ? p1 : p2, 1e-3);
    return circuit::dc_operating_point(n).voltage(forward ? "p2" : "p1");
  };
  EXPECT_NEAR(transfer(true), transfer(false), 1e-9);
}

TEST(MnaProperty, ScalingLinearity) {
  // Doubling the only source doubles every node voltage.
  auto probe = [](double vs) {
    circuit::Netlist n;
    const auto a = n.node("a");
    const auto b = n.node("b");
    n.add<circuit::VoltageSource>(a, circuit::kGround, vs);
    n.add<circuit::Resistor>(a, b, 1e3);
    n.add<circuit::Resistor>(b, circuit::kGround, 3.3e3);
    return circuit::dc_operating_point(n).voltage("b");
  };
  EXPECT_NEAR(probe(2.0), 2.0 * probe(1.0), 1e-9);
}

// --- ADC transfer properties over several dies ---

class DieSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DieSweep, TransferIsMonotoneWithinNoise) {
  core::Device die = core::Device::fabricate(GetParam());
  digital::MonotonicityChecker checker(2);
  const std::uint32_t fs = die.adc().full_scale_code();
  for (double v = 0.0; v <= 2.5; v += 0.025) {
    checker.observe(fs + 40u - die.adc().code_for(v));
  }
  EXPECT_TRUE(checker.report().monotonic) << "die " << GetParam();
}

TEST_P(DieSweep, ConversionAlwaysCompletesInSpec) {
  core::Device die = core::Device::fabricate(GetParam());
  for (double v = 0.0; v <= 2.5; v += 0.31) {
    const adc::ConversionResult r = die.adc().convert(v);
    EXPECT_TRUE(r.completed);
    EXPECT_FALSE(r.timed_out);
    EXPECT_LE(r.conversion_time_s, 5.6e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(TenDies, DieSweep,
                         ::testing::Range<std::uint64_t>(1, 11));

// --- Monotonicity checker dip tolerance ---

TEST(MonotonicityTolerance, SmallDipsIgnoredLargeCaught) {
  digital::MonotonicityChecker strict(0);
  digital::MonotonicityChecker tolerant(2);
  for (std::uint32_t c : {10u, 12u, 11u, 13u, 15u}) {
    strict.observe(c);
    tolerant.observe(c);
  }
  EXPECT_FALSE(strict.report().monotonic);   // 12 -> 11 dip
  EXPECT_TRUE(tolerant.report().monotonic);  // within the 2-count band
  tolerant.observe(9);                       // 15 -> 9: structural
  EXPECT_FALSE(tolerant.report().monotonic);
}

// --- Ramp transition measurement invariants over random staircases ---

class RampStaircaseSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RampStaircaseSweep, HalfLevelInvariantsHoldForRandomQuantizers) {
  // For any monotonic staircase (random LSB and offset), the sweep must
  // record exactly one transition per half-level crossed, in strictly
  // increasing voltage order, with no reverse transitions — the contract
  // the DNL/INL pipeline builds on.
  std::mt19937_64 rng(0xADC0 + GetParam());
  std::uniform_real_distribution<double> lsb_dist(0.005, 0.05);
  std::uniform_real_distribution<double> off_dist(0.0, 0.02);
  const double lsb = lsb_dist(rng);
  const double offset = off_dist(rng);
  adc::AdcTransferFn xfer = [=](double v) {
    return static_cast<std::uint32_t>(
        std::max(0.0, std::floor((v - offset) / lsb)));
  };
  const double v_lo = 0.001, v_hi = 0.5;
  const auto tl = adc::measure_transitions_ramp(xfer, v_lo, v_hi, lsb / 20.0);

  EXPECT_TRUE(tl.monotonic);
  EXPECT_TRUE(tl.reverse_transitions.empty());
  // One transition per code step: last code minus base code.
  const std::uint32_t last_code = xfer(v_hi);
  ASSERT_EQ(tl.transitions.size(),
            static_cast<std::size_t>(last_code - tl.base_code));
  for (std::size_t k = 0; k + 1 < tl.transitions.size(); ++k) {
    EXPECT_LT(tl.transitions[k], tl.transitions[k + 1]);
  }
  // Each transition lands within one sweep step of its true staircase edge.
  for (std::size_t k = 0; k < tl.transitions.size(); ++k) {
    const double true_edge =
        offset + (static_cast<double>(tl.base_code) + 1.0 +
                  static_cast<double>(k)) * lsb;
    EXPECT_NEAR(tl.transitions[k], true_edge, lsb / 20.0 + 1e-12);
  }
}

TEST_P(RampStaircaseSweep, ReboundIsFlaggedWithoutCorruptingTransitions) {
  // Insert a one-code rebound at a random half-level: the sweep must flag
  // non-monotonicity and record the downward crossing, while `transitions`
  // keeps exactly one (first-upward) entry per half-level.
  std::mt19937_64 rng(0xBAD0 + GetParam());
  std::uniform_int_distribution<int> code_dist(2, 6);
  const int rebound_code = code_dist(rng);
  const double lsb = 0.05;
  const double w_lo = (static_cast<double>(rebound_code) + 0.2) * lsb;
  const double w_hi = w_lo + 0.6 * lsb;
  adc::AdcTransferFn xfer = [=](double v) -> std::uint32_t {
    auto c = static_cast<std::uint32_t>(std::max(0.0, std::floor(v / lsb)));
    if (v >= w_lo && v < w_hi) c = static_cast<std::uint32_t>(rebound_code - 1);
    return c;
  };
  const auto clean = adc::measure_transitions_ramp(
      adc::AdcTransferFn([=](double v) {
        return static_cast<std::uint32_t>(
            std::max(0.0, std::floor(v / lsb)));
      }),
      0.001, 0.5, lsb / 25.0);
  const auto tl = adc::measure_transitions_ramp(xfer, 0.001, 0.5, lsb / 25.0);

  EXPECT_FALSE(tl.monotonic);
  ASSERT_EQ(tl.reverse_transitions.size(), 1u);
  EXPECT_NEAR(tl.reverse_transitions[0], w_lo, lsb / 25.0 + 1e-12);
  // Same half-level census as the clean staircase: the rebound's re-ascent
  // must not deposit duplicate entries.
  ASSERT_EQ(tl.transitions.size(), clean.transitions.size());
  for (std::size_t k = 0; k + 1 < tl.transitions.size(); ++k) {
    EXPECT_LT(tl.transitions[k], tl.transitions[k + 1]);
  }
}

INSTANTIATE_TEST_SUITE_P(EightStaircases, RampStaircaseSweep,
                         ::testing::Range<std::uint32_t>(0, 8));

// --- Distribution summary invariants ---

TEST(StatsProperty, SingleElementCollapsesEveryField) {
  const production::ParamStats s = production::compute_stats({3.25});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.mean, 3.25);
  EXPECT_EQ(s.sigma, 0.0);
  EXPECT_EQ(s.min, 3.25);
  EXPECT_EQ(s.max, 3.25);
  EXPECT_EQ(s.p05, 3.25);
  EXPECT_EQ(s.p50, 3.25);
  EXPECT_EQ(s.p95, 3.25);
  // Any quantile of a one-element sample is that element.
  for (double q : {0.0, 0.25, 0.5, 1.0}) {
    EXPECT_EQ(production::percentile_sorted({3.25}, q), 3.25);
  }
}

TEST(StatsProperty, AllEqualSampleHasZeroSpread) {
  const std::vector<double> same(17, -2.5);
  const production::ParamStats s = production::compute_stats(same);
  EXPECT_EQ(s.sigma, 0.0);
  EXPECT_EQ(s.mean, -2.5);
  EXPECT_EQ(s.min, s.max);
  EXPECT_EQ(s.p05, -2.5);
  EXPECT_EQ(s.p50, -2.5);
  EXPECT_EQ(s.p95, -2.5);
}

TEST(StatsProperty, QuantileEndpointsAndMonotonicityOnRandomSamples) {
  std::mt19937_64 rng(0x57A7);
  std::normal_distribution<double> dist(1.0, 0.3);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<double> sample(50 + trial * 37);
    for (double& v : sample) v = dist(rng);
    std::vector<double> sorted = sample;
    std::sort(sorted.begin(), sorted.end());
    // q = 0 / q = 1 are exactly the extremes; interior quantiles are
    // monotone in q and bounded by them.
    EXPECT_EQ(production::percentile_sorted(sorted, 0.0), sorted.front());
    EXPECT_EQ(production::percentile_sorted(sorted, 1.0), sorted.back());
    double prev = sorted.front();
    for (double q = 0.05; q < 1.0; q += 0.05) {
      const double p = production::percentile_sorted(sorted, q);
      EXPECT_GE(p, prev);
      EXPECT_LE(p, sorted.back());
      prev = p;
    }
    // Out-of-range q clamps rather than reading out of bounds.
    EXPECT_EQ(production::percentile_sorted(sorted, -0.5), sorted.front());
    EXPECT_EQ(production::percentile_sorted(sorted, 1.5), sorted.back());

    // compute_stats is order-independent: a shuffled copy summarizes
    // bit-identically (it sorts internally), which is what makes batch
    // aggregation deterministic at any thread count.
    std::vector<double> shuffled = sample;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    const production::ParamStats a = production::compute_stats(sample);
    const production::ParamStats b = production::compute_stats(shuffled);
    EXPECT_EQ(a.mean, b.mean);
    EXPECT_EQ(a.sigma, b.sigma);
    EXPECT_EQ(a.p05, b.p05);
    EXPECT_EQ(a.p50, b.p50);
    EXPECT_EQ(a.p95, b.p95);
    EXPECT_LE(a.min, a.p05);
    EXPECT_LE(a.p05, a.p50);
    EXPECT_LE(a.p50, a.p95);
    EXPECT_LE(a.p95, a.max);
    EXPECT_GE(a.mean, a.min);
    EXPECT_LE(a.mean, a.max);
  }
}

// --- Pole extraction consistency with the AC magnitude response ---

TEST(PoleConsistency, DominantPoleMatchesBandwidth) {
  // The golden OP1 model's dominant pole must agree with the -3 dB point
  // of its AC magnitude response (two independent code paths).
  const tsrt::PoleSignature sig = tsrt::extract_pole_signature(std::nullopt);
  ASSERT_FALSE(sig.poles.empty());
  const double f_dominant = std::abs(sig.poles.front().real()) /
                            (2.0 * std::acos(-1.0));
  EXPECT_GT(f_dominant, 1.0);
  EXPECT_LT(f_dominant, 1e6);
}

}  // namespace
}  // namespace msbist
