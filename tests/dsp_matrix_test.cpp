// Unit tests for the dense matrix kernel: LU, inverse, expm, eigenvalues.
#include "dsp/matrix.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <random>

namespace msbist::dsp {
namespace {

Matrix random_matrix(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) m(i, j) = d(rng);
  }
  return m;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  double e = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) e = std::max(e, std::abs(a(i, j) - b(i, j)));
  }
  return e;
}

// Sort complex values by (real, imag) for order-independent comparison.
std::vector<std::complex<double>> sorted(std::vector<std::complex<double>> v) {
  std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
    if (a.real() != b.real()) return a.real() < b.real();
    return a.imag() < b.imag();
  });
  return v;
}

TEST(Matrix, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 0), -2.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW(Matrix({{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityMultiplication) {
  const Matrix a = random_matrix(4, 1);
  const Matrix i = Matrix::identity(4);
  EXPECT_LT(max_abs_diff(a * i, a), 1e-14);
  EXPECT_LT(max_abs_diff(i * a, a), 1e-14);
}

TEST(Matrix, MatrixVectorProduct) {
  const Matrix a({{1.0, 2.0}, {3.0, 4.0}});
  const std::vector<double> v{1.0, 1.0};
  const auto r = a * v;
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 7.0);
}

TEST(Matrix, TransposeInvolution) {
  const Matrix a = random_matrix(5, 2);
  EXPECT_LT(max_abs_diff(a.transpose().transpose(), a), 1e-15);
}

TEST(Lu, SolvesKnownSystem) {
  const Matrix a({{2.0, 1.0}, {1.0, 3.0}});
  const auto x = solve(a, {3.0, 5.0});
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, ResidualIsSmallForRandomSystems) {
  for (std::size_t n : {2u, 5u, 10u, 20u}) {
    const Matrix a = random_matrix(n, 100 + n);
    std::vector<double> b(n, 1.0);
    const auto x = solve(a, b);
    const auto ax = a * x;
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9) << "n=" << n;
  }
}

TEST(Lu, SingularMatrixThrows) {
  const Matrix a({{1.0, 2.0}, {2.0, 4.0}});
  EXPECT_THROW(LuDecomposition{a}, std::runtime_error);
}

TEST(Lu, DeterminantKnownValues) {
  const Matrix a({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_NEAR(LuDecomposition(a).determinant(), -2.0, 1e-12);
  EXPECT_NEAR(LuDecomposition(Matrix::identity(6)).determinant(), 1.0, 1e-12);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  const Matrix a({{0.0, 1.0}, {1.0, 0.0}});
  const auto x = solve(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Inverse, TimesOriginalIsIdentity) {
  const Matrix a = random_matrix(6, 77);
  const Matrix ai = inverse(a);
  EXPECT_LT(max_abs_diff(a * ai, Matrix::identity(6)), 1e-9);
}

TEST(Expm, ZeroMatrixGivesIdentity) {
  const Matrix z(3, 3);
  EXPECT_LT(max_abs_diff(expm(z), Matrix::identity(3)), 1e-14);
}

TEST(Expm, DiagonalMatrix) {
  const Matrix d = Matrix::diagonal({1.0, -2.0, 0.5});
  const Matrix e = expm(d);
  EXPECT_NEAR(e(0, 0), std::exp(1.0), 1e-12);
  EXPECT_NEAR(e(1, 1), std::exp(-2.0), 1e-12);
  EXPECT_NEAR(e(2, 2), std::exp(0.5), 1e-12);
  EXPECT_NEAR(e(0, 1), 0.0, 1e-14);
}

TEST(Expm, RotationGenerator) {
  // expm([[0, -t], [t, 0]]) is a rotation by t.
  const double t = 1.2;
  const Matrix g({{0.0, -t}, {t, 0.0}});
  const Matrix e = expm(g);
  EXPECT_NEAR(e(0, 0), std::cos(t), 1e-12);
  EXPECT_NEAR(e(0, 1), -std::sin(t), 1e-12);
  EXPECT_NEAR(e(1, 0), std::sin(t), 1e-12);
  EXPECT_NEAR(e(1, 1), std::cos(t), 1e-12);
}

TEST(Expm, LargeNormUsesScaling) {
  const Matrix d = Matrix::diagonal({10.0, -30.0});
  const Matrix e = expm(d);
  EXPECT_NEAR(e(0, 0) / std::exp(10.0), 1.0, 1e-10);
  EXPECT_NEAR(e(1, 1) / std::exp(-30.0), 1.0, 1e-8);
}

TEST(Eigen, DiagonalEigenvalues) {
  const auto ev = sorted(eigenvalues(Matrix::diagonal({3.0, -1.0, 2.0})));
  EXPECT_NEAR(ev[0].real(), -1.0, 1e-9);
  EXPECT_NEAR(ev[1].real(), 2.0, 1e-9);
  EXPECT_NEAR(ev[2].real(), 3.0, 1e-9);
  for (const auto& e : ev) EXPECT_NEAR(e.imag(), 0.0, 1e-9);
}

TEST(Eigen, SymmetricKnownSpectrum) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  const auto ev = sorted(eigenvalues(Matrix({{2.0, 1.0}, {1.0, 2.0}})));
  EXPECT_NEAR(ev[0].real(), 1.0, 1e-10);
  EXPECT_NEAR(ev[1].real(), 3.0, 1e-10);
}

TEST(Eigen, ComplexPairFromRotation) {
  // [[0,-1],[1,0]] has eigenvalues +/- i.
  const auto ev = sorted(eigenvalues(Matrix({{0.0, -1.0}, {1.0, 0.0}})));
  EXPECT_NEAR(ev[0].real(), 0.0, 1e-10);
  EXPECT_NEAR(std::abs(ev[0].imag()), 1.0, 1e-10);
  EXPECT_NEAR(ev[1].imag(), -ev[0].imag(), 1e-10);
}

TEST(Eigen, TraceAndDeterminantInvariants) {
  for (std::size_t n : {3u, 5u, 8u}) {
    const Matrix a = random_matrix(n, 500 + n);
    const auto ev = eigenvalues(a);
    std::complex<double> tr{0.0, 0.0}, det{1.0, 0.0};
    for (const auto& e : ev) {
      tr += e;
      det *= e;
    }
    double trace_a = 0.0;
    for (std::size_t i = 0; i < n; ++i) trace_a += a(i, i);
    EXPECT_NEAR(tr.real(), trace_a, 1e-8) << "n=" << n;
    EXPECT_NEAR(tr.imag(), 0.0, 1e-8) << "n=" << n;
    EXPECT_NEAR(det.real(), LuDecomposition(a).determinant(), 1e-7) << "n=" << n;
  }
}

TEST(Eigen, UpperTriangularReadsDiagonal) {
  Matrix a(4, 4);
  const double diag[] = {1.0, 2.0, 3.0, 4.0};
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, i) = diag[i];
    for (std::size_t j = i + 1; j < 4; ++j) a(i, j) = 0.7;
  }
  auto ev = sorted(eigenvalues(a));
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(ev[i].real(), diag[i], 1e-9);
}

}  // namespace
}  // namespace msbist::dsp
