// Unit tests for the extension features: parametric faults, spectral
// detection, the DAC macro, and the servo transition method.
#include <gtest/gtest.h>

#include <cmath>

#include "adc/dac.h"
#include "adc/dual_slope.h"
#include "adc/metrics.h"
#include "circuit/dc.h"
#include "circuit/elements.h"
#include "circuit/mos.h"
#include "faults/parametric.h"
#include "tsrt/transient_test.h"

namespace msbist {
namespace {

// --- parametric faults ---

TEST(Parametric, DegradeAllDevices) {
  circuit::Netlist n;
  n.add<circuit::Mosfet>(circuit::MosType::kNmos, n.node("d"), n.node("g"),
                         circuit::kGround, circuit::MosParams::nmos_5um());
  n.add<circuit::Mosfet>(circuit::MosType::kPmos, n.node("d2"), n.node("g"),
                         n.node("vdd"), circuit::MosParams::pmos_5um());
  const int touched =
      faults::inject_parametric(n, faults::ParametricFault::degrade_kp(0.5));
  EXPECT_EQ(touched, 2);
  for (const auto& el : n.elements()) {
    const auto* mos = dynamic_cast<const circuit::Mosfet*>(el.get());
    ASSERT_NE(mos, nullptr);
    EXPECT_LT(mos->params().kp, 15e-6);
  }
}

TEST(Parametric, SingleDeviceByIndex) {
  circuit::Netlist n;
  n.add<circuit::Resistor>(n.node("a"), circuit::kGround, 1e3);  // not a MOS
  auto* m0 = n.add<circuit::Mosfet>(circuit::MosType::kNmos, n.node("d"), n.node("g"),
                                    circuit::kGround, circuit::MosParams::nmos_5um());
  auto* m1 = n.add<circuit::Mosfet>(circuit::MosType::kNmos, n.node("d2"), n.node("g"),
                                    circuit::kGround, circuit::MosParams::nmos_5um());
  const double vt0 = m0->params().vt;
  EXPECT_EQ(faults::inject_parametric(n, faults::ParametricFault::shift_vt(0.3, 1)), 1);
  EXPECT_DOUBLE_EQ(m0->params().vt, vt0);
  EXPECT_NEAR(m1->params().vt, vt0 + 0.3, 1e-12);
}

TEST(Parametric, OutOfRangeIndexTouchesNothing) {
  circuit::Netlist n;
  n.add<circuit::Mosfet>(circuit::MosType::kNmos, n.node("d"), n.node("g"),
                         circuit::kGround, circuit::MosParams::nmos_5um());
  EXPECT_EQ(faults::inject_parametric(n, faults::ParametricFault::degrade_kp(0.5, 7)), 0);
}

TEST(Parametric, InvalidScaleThrows) {
  EXPECT_THROW(faults::ParametricFault::degrade_kp(0.0), std::invalid_argument);
}

TEST(Parametric, SevereDegradationDetectedByTsrt) {
  using namespace tsrt;
  const TsrtOptions opts = paper_options(CircuitKind::kOp1Follower);
  const TsrtRun golden =
      run_transient_test(CircuitKind::kOp1Follower, std::nullopt, opts);
  // 90 % beta loss on every device: slew collapses, signature shifts.
  const TsrtRun weak = run_transient_test(
      CircuitKind::kOp1Follower, faults::ParametricFault::degrade_kp(0.1), opts);
  EXPECT_GT(correlation_detection_percent(golden, weak), 10.0);
  // A 2 % drift stays within tolerance (no false alarm on in-spec drift).
  const TsrtRun drift = run_transient_test(
      CircuitKind::kOp1Follower, faults::ParametricFault::degrade_kp(0.98), opts);
  EXPECT_LT(correlation_detection_percent(golden, drift), 5.0);
}

TEST(Parametric, ParametricRunRejectsEmptyTarget) {
  using namespace tsrt;
  EXPECT_THROW(run_transient_test(CircuitKind::kOp1Follower,
                                  faults::ParametricFault::degrade_kp(0.5, 99),
                                  paper_options(CircuitKind::kOp1Follower)),
               std::invalid_argument);
}

// --- spectral detection ---

TEST(SpectrumDetect, SelfComparisonIsZero) {
  using namespace tsrt;
  const TsrtRun run = run_transient_test(CircuitKind::kOp1Follower, std::nullopt,
                                         paper_options(CircuitKind::kOp1Follower));
  EXPECT_DOUBLE_EQ(spectrum_detection_percent(run, run), 0.0);
}

TEST(SpectrumDetect, HardFaultChangesSpectrum) {
  using namespace tsrt;
  const TsrtOptions opts = paper_options(CircuitKind::kOp1Follower);
  const TsrtRun golden =
      run_transient_test(CircuitKind::kOp1Follower, std::nullopt, opts);
  const TsrtRun faulty = run_transient_test(
      CircuitKind::kOp1Follower, faults::FaultSpec::stuck_at(8, true), opts);
  EXPECT_GT(spectrum_detection_percent(golden, faulty), 10.0);
}

// --- DAC macro ---

TEST(DacTest, IdealTransferIsExact) {
  adc::Dac dac(adc::DacConfig::ideal(8, 2.56));
  EXPECT_DOUBLE_EQ(dac.output(0), 0.0);
  EXPECT_NEAR(dac.output(128), 1.28, 1e-12);
  EXPECT_NEAR(dac.output(255), 2.56 - dac.lsb_volts(), 1e-12);
  EXPECT_NEAR(dac.lsb_volts(), 0.01, 1e-12);
}

TEST(DacTest, CodeClamped) {
  adc::Dac dac(adc::DacConfig::ideal(4, 1.6));
  EXPECT_DOUBLE_EQ(dac.output(99), dac.output(15));
}

TEST(DacTest, IdealMetricsAreClean) {
  adc::Dac dac(adc::DacConfig::ideal(8));
  const adc::DacMetrics m = adc::dac_metrics(dac);
  EXPECT_LT(m.max_abs_dnl, 1e-9);
  EXPECT_LT(m.max_abs_inl, 1e-9);
  EXPECT_TRUE(m.monotonic);
  EXPECT_NEAR(m.offset_lsb, 0.0, 1e-9);
}

TEST(DacTest, MsbWeightErrorShowsAtMajorCarry) {
  adc::DacConfig cfg = adc::DacConfig::ideal(8);
  cfg.weight_errors.assign(8, 0.0);
  cfg.weight_errors[0] = -0.02;  // MSB 2 % light
  const adc::DacMetrics m = adc::dac_metrics(adc::Dac(cfg));
  // DNL spike at the 127 -> 128 major carry: dV = w_msb - sum(others) - lsb.
  std::size_t worst = 0;
  for (std::size_t k = 1; k < m.dnl_lsb.size(); ++k) {
    if (std::abs(m.dnl_lsb[k]) > std::abs(m.dnl_lsb[worst])) worst = k;
  }
  EXPECT_EQ(worst, 127u);
  EXPECT_LT(m.dnl_lsb[127], -1.0);  // non-monotonic major carry
  EXPECT_FALSE(m.monotonic);
}

TEST(DacTest, FabricatedStaysNearSpec) {
  analog::ProcessVariation pv(21);
  adc::Dac dac(adc::DacConfig::fabricated(pv, 8));
  const adc::DacMetrics m = adc::dac_metrics(dac);
  EXPECT_LT(m.max_abs_dnl, 2.0);
  EXPECT_LT(std::abs(m.offset_lsb), 0.5);
}

TEST(DacTest, AdcDacLoopback) {
  // The self-calibration idea from the paper's background: convert DAC
  // levels with the ADC; the loopback code error stays within the two
  // converters' combined error budget.
  adc::Dac dac(adc::DacConfig::ideal(8, 2.5));
  adc::DualSlopeAdc conv(adc::DualSlopeAdcConfig::ideal());
  for (std::uint32_t code = 8; code < 250; code += 24) {
    const double v = dac.output(code);
    const std::uint32_t adc_code = conv.code_for(v);
    const std::uint32_t expected = conv.ideal_code(v);
    EXPECT_NEAR(static_cast<double>(adc_code), static_cast<double>(expected), 1.5)
        << "dac code " << code;
  }
}

TEST(DacTest, Validation) {
  adc::DacConfig cfg = adc::DacConfig::ideal(8);
  cfg.weight_errors.assign(3, 0.0);  // wrong size
  EXPECT_THROW(adc::Dac{cfg}, std::invalid_argument);
  adc::DacConfig zero = adc::DacConfig::ideal(0);
  EXPECT_THROW(adc::Dac{zero}, std::invalid_argument);
}

// --- servo transition measurement ---

TEST(Servo, FindsIdealTransition) {
  const double lsb = 0.01;
  const adc::AdcTransferFn xfer = [=](double v) {
    return static_cast<std::uint32_t>(std::max(0.0, std::floor(v / lsb)));
  };
  const double t10 = adc::measure_transition_servo(xfer, 10, 0.0, 0.3);
  EXPECT_NEAR(t10, 0.10, 1e-5);
}

TEST(Servo, MatchesRampMethodOnTheRealAdc) {
  adc::DualSlopeAdc a(adc::DualSlopeAdcConfig::characterized());
  adc::DualSlopeAdc b(adc::DualSlopeAdcConfig::characterized());
  const adc::AdcTransferFn xa = [&](double v) -> std::uint32_t {
    return 300u - a.code_for(v);
  };
  const adc::AdcTransferFn xb = [&](double v) -> std::uint32_t {
    return 300u - b.code_for(v);
  };
  // Transition into ascending code 90 (i.e. raw code 210).
  const double servo = adc::measure_transition_servo(xb, 90, 0.3, 0.7, 31);
  const auto tl = adc::measure_transitions_ramp(xa, 0.3, 0.7, 0.0005, 16);
  // Find the ramp-measured transition into code 90.
  ASSERT_FALSE(tl.transitions.empty());
  const std::size_t idx = 90 - (tl.base_code + 1);
  ASSERT_LT(idx, tl.transitions.size());
  EXPECT_NEAR(servo, tl.transitions[idx], 0.004);  // within half an LSB
}

TEST(Servo, Validation) {
  const adc::AdcTransferFn xfer = [](double) { return 0u; };
  EXPECT_THROW(adc::measure_transition_servo(xfer, 1, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(adc::measure_transition_servo(xfer, 1, 0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace msbist
