// Unit tests for windows, spectra, noise, and resampling.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/noise.h"
#include "dsp/resample.h"
#include "dsp/spectrum.h"
#include "dsp/vec.h"
#include "dsp/window.h"

namespace msbist::dsp {
namespace {

TEST(Window, RectangularIsAllOnes) {
  const auto w = window(WindowKind::kRectangular, 8);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Window, HannEndpointsAreZero) {
  const auto w = window(WindowKind::kHann, 16);
  EXPECT_NEAR(w.front(), 0.0, 1e-15);
  EXPECT_NEAR(w.back(), 0.0, 1e-15);
  EXPECT_NEAR(w[8], 1.0, 0.05);
}

TEST(Window, SymmetryProperty) {
  for (auto kind : {WindowKind::kHann, WindowKind::kHamming, WindowKind::kBlackman}) {
    const auto w = window(kind, 21);
    for (std::size_t i = 0; i < w.size(); ++i) {
      EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12);
    }
  }
}

TEST(Window, EdgeSizes) {
  EXPECT_TRUE(window(WindowKind::kHann, 0).empty());
  const auto w1 = window(WindowKind::kBlackman, 1);
  ASSERT_EQ(w1.size(), 1u);
  EXPECT_DOUBLE_EQ(w1[0], 1.0);
}

TEST(Window, CoherentGainRectangularIsOne) {
  EXPECT_DOUBLE_EQ(coherent_gain(WindowKind::kRectangular, 64), 1.0);
  EXPECT_NEAR(coherent_gain(WindowKind::kHann, 4096), 0.5, 1e-3);
}

TEST(Spectrum, SineAmplitudeRecovered) {
  const std::size_t n = 1024;
  const double fs = 1e4, f0 = fs * 32.0 / static_cast<double>(n), amp = 1.7;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = amp * std::sin(2.0 * std::numbers::pi * f0 * static_cast<double>(i) / fs);
  }
  const auto mag = magnitude_spectrum(x, WindowKind::kRectangular);
  const auto freqs = spectrum_frequencies(n, fs);
  const std::size_t peak = argmax(mag);
  EXPECT_NEAR(freqs[peak], f0, fs / static_cast<double>(n));
  EXPECT_NEAR(mag[peak], amp, 0.01);
}

TEST(Spectrum, DcComponentNotDoubled) {
  const std::vector<double> x(64, 2.0);
  const auto mag = magnitude_spectrum(x, WindowKind::kRectangular);
  EXPECT_NEAR(mag[0], 2.0, 1e-9);
}

TEST(Spectrum, PowerAndDb) {
  EXPECT_DOUBLE_EQ(power({3.0, -3.0}), 9.0);
  EXPECT_NEAR(power_db(100.0, 1.0), 20.0, 1e-12);
  EXPECT_THROW(power_db(1.0, 0.0), std::invalid_argument);
}

TEST(Spectrum, SnrOfKnownNoise) {
  const std::size_t n = 20000;
  std::vector<double> clean(n);
  for (std::size_t i = 0; i < n; ++i) clean[i] = std::sin(0.01 * static_cast<double>(i));
  const auto noisy = add_awgn_snr(clean, 20.0, 1234);
  EXPECT_NEAR(snr_db(clean, noisy), 20.0, 0.5);
}

TEST(Noise, Deterministic) {
  const auto a = gaussian_noise(100, 1.0, 42);
  const auto b = gaussian_noise(100, 1.0, 42);
  EXPECT_EQ(a, b);
  const auto c = gaussian_noise(100, 1.0, 43);
  EXPECT_NE(a, c);
}

TEST(Noise, SigmaScales) {
  const auto x = gaussian_noise(50000, 2.0, 7);
  EXPECT_NEAR(stddev(x), 2.0, 0.05);
  EXPECT_NEAR(mean(x), 0.0, 0.05);
}

TEST(Noise, ZeroSigmaIsSilent) {
  const auto x = gaussian_noise(10, 0.0, 1);
  for (double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Noise, AwgnOnZeroSignalIsIdentity) {
  const std::vector<double> z(10, 0.0);
  EXPECT_EQ(add_awgn_snr(z, 10.0, 5), z);
}

TEST(Resample, InterpLinearBasics) {
  const std::vector<double> xs{0.0, 1.0, 2.0};
  const std::vector<double> ys{0.0, 10.0, 0.0};
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 1.5), 5.0);
  // Edge hold.
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 3.0), 0.0);
}

TEST(Resample, InterpLinearValidation) {
  EXPECT_THROW(interp_linear({}, {}, 0.0), std::invalid_argument);
  EXPECT_THROW(interp_linear({0.0, 1.0}, {0.0}, 0.5), std::invalid_argument);
}

TEST(Resample, UpsampleLinearRamp) {
  // A ramp resampled at half the step stays a ramp.
  const std::vector<double> y{0.0, 1.0, 2.0, 3.0};
  const auto r = resample_linear(y, 1.0, 0.5);
  ASSERT_EQ(r.size(), 7u);
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_NEAR(r[i], 0.5 * static_cast<double>(i), 1e-12);
  }
}

TEST(Resample, DownsamplePreservesEndpointsOfRamp) {
  const auto ramp = linspace(0.0, 10.0, 101);
  const auto r = resample_linear(ramp, 0.01, 0.05);
  EXPECT_NEAR(r.front(), 0.0, 1e-12);
  EXPECT_NEAR(r.back(), 10.0, 1e-9);
}

TEST(Resample, Decimate) {
  const std::vector<double> y{0, 1, 2, 3, 4, 5, 6};
  EXPECT_EQ(decimate(y, 3), (std::vector<double>{0, 3, 6}));
  EXPECT_THROW(decimate(y, 0), std::invalid_argument);
}

}  // namespace
}  // namespace msbist::dsp
