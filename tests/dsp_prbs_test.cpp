// Unit tests for the PRBS / LFSR stimulus generator.
#include "dsp/prbs.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "dsp/vec.h"

namespace msbist::dsp {
namespace {

TEST(Prbs, InvalidArgumentsThrow) {
  EXPECT_THROW(Prbs(1, 1), std::invalid_argument);
  EXPECT_THROW(Prbs(32, 1), std::invalid_argument);
  EXPECT_THROW(Prbs(4, 0), std::invalid_argument);
  // Seed that masks to zero within the register width.
  EXPECT_THROW(Prbs(4, 0b10000), std::invalid_argument);
}

TEST(Prbs, PeriodFormula) {
  EXPECT_EQ(Prbs(4).period(), 15u);
  EXPECT_EQ(Prbs(15).period(), 32767u);
}

TEST(Prbs, PaperStimulusIsFifteenBits) {
  // The paper's stimulus: 15-bit sequence, 250 us steps, 0/5 V.
  Prbs gen(4);
  const auto bits = gen.full_period();
  EXPECT_EQ(bits.size(), 15u);
}

// Parameterized maximality check: a maximal-length LFSR must cycle
// through all 2^n - 1 nonzero states before repeating.
class PrbsMaximality : public ::testing::TestWithParam<unsigned> {};

TEST_P(PrbsMaximality, VisitsAllNonzeroStates) {
  const unsigned stages = GetParam();
  Prbs gen(stages, 1);
  const std::size_t period = gen.period();
  // Collect output bits over one period and verify the balance property
  // (2^{n-1} ones, 2^{n-1}-1 zeros), which only a maximal sequence with
  // this period length can satisfy together with non-repetition below.
  const auto bits = gen.bits(period);
  std::size_t ones = 0;
  for (int b : bits) ones += static_cast<std::size_t>(b);
  EXPECT_EQ(ones, (period + 1) / 2);
  // Next full period must repeat exactly (periodicity).
  const auto bits2 = gen.bits(period);
  EXPECT_EQ(bits, bits2);
  // No shorter period: a proper divisor prefix must not tile the sequence.
  for (std::size_t cand = 1; cand < period; ++cand) {
    if (period % cand != 0) continue;
    bool tiles = true;
    for (std::size_t i = cand; i < period && tiles; ++i) {
      if (bits[i] != bits[i % cand]) tiles = false;
    }
    EXPECT_FALSE(tiles) << "stages=" << stages << " has sub-period " << cand;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSupportedWidths, PrbsMaximality,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u, 11u,
                                           12u, 13u, 14u, 15u, 16u));

TEST(Prbs, SeedChangesPhaseNotSequence) {
  // Different seeds give rotations of the same maximal sequence.
  Prbs a(5, 1);
  Prbs b(5, 7);
  const auto sa = a.full_period();
  const auto sb = b.full_period();
  // sb must appear as a rotation of sa.
  bool found = false;
  for (std::size_t shift = 0; shift < sa.size() && !found; ++shift) {
    bool match = true;
    for (std::size_t i = 0; i < sa.size() && match; ++i) {
      if (sb[i] != sa[(i + shift) % sa.size()]) match = false;
    }
    found = match;
  }
  EXPECT_TRUE(found);
}

TEST(Prbs, BitsToWaveformHold) {
  const auto w = bits_to_waveform({1, 0, 1}, 3, 0.0, 5.0);
  const std::vector<double> expect{5, 5, 5, 0, 0, 0, 5, 5, 5};
  EXPECT_EQ(w, expect);
}

TEST(Prbs, BitsToWaveformZeroSamplesThrows) {
  EXPECT_THROW(bits_to_waveform({1}, 0, 0.0, 5.0), std::invalid_argument);
}

TEST(Prbs, StimulusMatchesPaperParameters) {
  // 15 bits x 250 us / 5 us sampling = 750 samples of 0/5 V.
  const auto w = prbs_stimulus(4, 250e-6, 5e-6, 5.0);
  EXPECT_EQ(w.size(), 15u * 50u);
  for (double v : w) EXPECT_TRUE(v == 0.0 || v == 5.0);
  EXPECT_GT(max(w), 4.9);
  EXPECT_LT(min(w), 0.1);
}

TEST(Prbs, StimulusRejectsCoarseSampling) {
  EXPECT_THROW(prbs_stimulus(4, 1e-6, 250e-6, 5.0), std::invalid_argument);
}

}  // namespace
}  // namespace msbist::dsp
