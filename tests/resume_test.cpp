// Checkpointed resume of the lot-scale engines: device/fault checkpoint
// encode/decode round-trips, run_batch / run_batch_lockstep /
// run_campaign resume bit-identity against uninterrupted runs, and the
// dispatch-layer wiring (DispatchHooks::unit_complete / resume).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/job.h"
#include "core/json_value.h"
#include "core/outcome.h"
#include "faults/campaign.h"
#include "faults/universe.h"
#include "production/batch.h"
#include "service/dispatch.h"

namespace {

using namespace msbist;
using core::JsonValue;
using core::parse_json;

/// Strip the per-run timing fields a resumed report legitimately differs
/// in: batch wall clock, and elapsed_seconds on the dies actually
/// RE-tested (restored dies splice the original run's document verbatim,
/// original timing included).
JsonValue strip_batch_timing(JsonValue report) {
  report.erase("wall_seconds");
  report.erase("cpu_seconds");
  report.erase("devices_per_second");
  if (const JsonValue* devices = report.find("devices")) {
    JsonValue cleaned = JsonValue::array();
    for (JsonValue d : devices->items()) {
      d.erase("elapsed_seconds");
      cleaned.push_back(std::move(d));
    }
    report.set("devices", std::move(cleaned));
  }
  return report;
}

faults::FaultTestFn deterministic_probe() {
  return [](const faults::FaultSpec& f) {
    faults::FaultResult r;
    r.fault = f;
    r.detected = f.kind != faults::FaultKind::kBridge;
    r.score = static_cast<double>(f.node_a) * 0.25;
    r.detail = "probe " + f.label;
    return r;
  };
}

TEST(Resume, DeviceCheckpointRoundTripsByteIdentical) {
  const auto population = production::paper_population();
  const production::DeviceOutcome original =
      production::test_device(population.front(), production::TestPlan::full());

  const std::string checkpoint = production::encode_device_checkpoint(original);
  const production::DeviceOutcome restored =
      production::decode_device_checkpoint(parse_json(checkpoint));

  // The restored outcome serializes byte-identically (verbatim splice)…
  EXPECT_EQ(core::to_json(restored), core::to_json(original));
  // …and its typed canon side carries what aggregation needs.
  EXPECT_EQ(restored.seed, original.seed);
  EXPECT_EQ(restored.label, original.label);
  EXPECT_EQ(restored.outcome.pass, original.outcome.pass);
  EXPECT_EQ(restored.tiers_run, original.tiers_run);
  EXPECT_EQ(restored.has_metrics, original.has_metrics);
  EXPECT_EQ(restored.spot_check_run, original.spot_check_run);
  EXPECT_DOUBLE_EQ(restored.elapsed_seconds, original.elapsed_seconds);
}

TEST(Resume, FaultCheckpointRoundTripsIncludingFailure) {
  faults::FaultResult original;
  original.fault = {faults::FaultKind::kBridge, 3, 5, false, "R3||R5"};
  original.detected = true;
  original.detected_by_failure = true;
  original.score = 0.625;
  original.detail = "solver rejected the bridged macro";
  original.has_failure = true;
  original.failure.code = core::ErrorCode::kSingularMatrix;
  original.failure.analysis = "campaign";
  original.failure.detail = "singular matrix";
  original.elapsed_seconds = 0.0125;

  const faults::FaultResult restored = faults::decode_fault_checkpoint(
      parse_json(faults::encode_fault_checkpoint(original)));
  EXPECT_EQ(core::to_json(restored), core::to_json(original));
  EXPECT_EQ(restored.fault.kind, original.fault.kind);
  EXPECT_EQ(restored.fault.label, original.fault.label);
  EXPECT_TRUE(restored.has_failure);
  EXPECT_EQ(restored.failure.code, core::ErrorCode::kSingularMatrix);
}

TEST(Resume, MalformedCheckpointsThrowBadInput) {
  for (const char* bad : {"{}", "[1,2]", R"({"canon":{}})"}) {
    try {
      (void)production::decode_device_checkpoint(parse_json(bad));
      FAIL() << "device checkpoint " << bad << " should not decode";
    } catch (const core::SolverError& e) {
      EXPECT_EQ(e.code(), core::ErrorCode::kBadInput);
    }
  }
  try {
    (void)faults::decode_fault_checkpoint(parse_json("{}"));
    FAIL() << "fault checkpoint should not decode";
  } catch (const core::SolverError& e) {
    EXPECT_EQ(e.code(), core::ErrorCode::kBadInput);
  }
}

TEST(Resume, BatchResumeMatchesUninterruptedRun) {
  const auto population = production::paper_population();
  const production::TestPlan plan = production::TestPlan::bist_only();

  // Uninterrupted control run, capturing every die's checkpoint — the
  // exact stream a daemon would have journaled before the "crash".
  std::map<std::size_t, std::string> checkpoints;
  const production::BatchReport control = production::run_batch(
      population, plan, 1, {}, nullptr,
      [&checkpoints](std::size_t index,
                     const production::DeviceOutcome& outcome) {
        checkpoints[index] = production::encode_device_checkpoint(outcome);
      });
  ASSERT_EQ(checkpoints.size(), population.size());

  // "Crash" after the first half: decode those checkpoints back and
  // resume. The resumed report must match the control bit-for-bit on
  // everything but batch-level wall clock.
  production::BatchResume resume;
  for (std::size_t i = 0; i < population.size() / 2; ++i) {
    resume.completed.emplace(
        i, production::decode_device_checkpoint(parse_json(checkpoints[i])));
  }
  std::size_t retested = 0;
  const production::BatchReport resumed = production::run_batch(
      population, plan, 1, {}, &resume,
      [&retested](std::size_t, const production::DeviceOutcome&) {
        ++retested;
      });

  EXPECT_EQ(retested, population.size() - resume.completed.size());
  EXPECT_EQ(resumed.canonical_outcomes(), control.canonical_outcomes());
  EXPECT_EQ(strip_batch_timing(parse_json(core::to_json(resumed))).dump(),
            strip_batch_timing(parse_json(core::to_json(control))).dump());
}

TEST(Resume, LockstepResumeMarchesOnlyLiveLanes) {
  const auto population = service::lockstep_screen_population(8, 20260808);
  const production::LockstepPlan plan = service::lockstep_screen_plan();

  std::map<std::size_t, std::string> checkpoints;
  const production::BatchReport control = production::run_batch_lockstep(
      population, plan, nullptr,
      [&checkpoints](std::size_t index,
                     const production::DeviceOutcome& outcome) {
        checkpoints[index] = production::encode_device_checkpoint(outcome);
      });
  ASSERT_EQ(checkpoints.size(), population.size());

  // Restore a non-contiguous subset (lanes 0, 2, 5) so the live-lane
  // index remap is actually exercised.
  production::BatchResume resume;
  for (const std::size_t lane : {std::size_t{0}, std::size_t{2}, std::size_t{5}}) {
    resume.completed.emplace(lane, production::decode_device_checkpoint(
                                       parse_json(checkpoints[lane])));
  }
  std::size_t retested = 0;
  const production::BatchReport resumed = production::run_batch_lockstep(
      population, plan, &resume,
      [&retested](std::size_t, const production::DeviceOutcome&) {
        ++retested;
      });

  EXPECT_EQ(retested, population.size() - resume.completed.size());
  EXPECT_EQ(resumed.canonical_outcomes(), control.canonical_outcomes());
  EXPECT_EQ(strip_batch_timing(parse_json(core::to_json(resumed))).dump(),
            strip_batch_timing(parse_json(core::to_json(control))).dump());
}

TEST(Resume, CampaignResumeSerialAndParallel) {
  const auto universe = faults::op1_fault_universe();
  const auto probe = deterministic_probe();

  std::map<std::size_t, std::string> checkpoints;
  faults::CampaignOptions record;
  record.on_fault_complete = [&checkpoints](std::size_t index, std::size_t,
                                            const faults::FaultResult& r) {
    checkpoints[index] = faults::encode_fault_checkpoint(r);
  };
  const faults::CampaignReport control =
      faults::run_campaign(universe, probe, record);
  ASSERT_EQ(checkpoints.size(), universe.size());

  faults::CampaignResume resume;
  for (std::size_t i = 0; i < universe.size() / 2; ++i) {
    resume.completed.emplace(
        i, faults::decode_fault_checkpoint(parse_json(checkpoints[i])));
  }

  for (const bool parallel : {false, true}) {
    faults::CampaignOptions opts;
    opts.threads = parallel ? 4 : 0;
    opts.resume = &resume;
    std::size_t resimulated = 0;
    opts.on_fault_complete = [&resimulated](std::size_t, std::size_t,
                                            const faults::FaultResult&) {
      ++resimulated;
    };
    const faults::CampaignReport resumed =
        parallel ? faults::run_campaign_parallel(universe, probe, opts)
                 : faults::run_campaign(universe, probe, opts);
    EXPECT_EQ(resimulated, universe.size() - resume.completed.size());
    EXPECT_EQ(resumed.canonical_outcomes(), control.canonical_outcomes());
    EXPECT_EQ(resumed.detected_count, control.detected_count);
    EXPECT_EQ(resumed.simulated_count, control.simulated_count);
    ASSERT_EQ(resumed.results.size(), universe.size());
    for (std::size_t i = 0; i < universe.size(); ++i) {
      EXPECT_EQ(resumed.results[i].fault.label, universe[i].label);
    }
  }
}

TEST(Resume, ResumeIsIncompatibleWithStopOnFirstUndetected) {
  faults::CampaignResume resume;
  faults::CampaignOptions opts;
  opts.resume = &resume;
  opts.stop_on_first_undetected = true;
  EXPECT_THROW(
      faults::run_campaign(faults::sc_fault_universe(), deterministic_probe(),
                           opts),
      std::invalid_argument);
}

// --- Dispatch-layer wiring: the path the daemon actually takes --------

core::JobRequest small_batch_request() {
  core::JobRequest req;
  req.kind = core::JobKind::kBatch;
  req.device_count = 6;
  req.batch_seed = 777;
  req.threads = 1;
  return req;
}

TEST(Resume, DispatchBatchResumesFromJournaledCheckpoints) {
  const core::JobRequest req = small_batch_request();

  std::map<std::size_t, std::string> checkpoints;
  service::DispatchHooks record;
  record.unit_complete = [&checkpoints](std::size_t unit, std::size_t,
                                        const std::string& checkpoint_json) {
    checkpoints[unit] = checkpoint_json;
  };
  const service::DispatchResult control = service::dispatch(req, record);
  ASSERT_EQ(checkpoints.size(), req.device_count);
  EXPECT_EQ(control.resumed_units, 0u);

  std::map<std::size_t, std::string> half(checkpoints.begin(),
                                          std::next(checkpoints.begin(), 3));
  service::DispatchHooks hooks;
  hooks.resume = &half;
  std::size_t retested = 0;
  hooks.unit_complete = [&retested](std::size_t, std::size_t,
                                    const std::string&) { ++retested; };
  const service::DispatchResult resumed = service::dispatch(req, hooks);

  EXPECT_EQ(resumed.resumed_units, 3u);
  EXPECT_EQ(retested, req.device_count - 3);
  EXPECT_EQ(strip_batch_timing(parse_json(resumed.report_json)).dump(),
            strip_batch_timing(parse_json(control.report_json)).dump());
}

TEST(Resume, DispatchDropsUndecodableCheckpointsAndRetests) {
  const core::JobRequest req = small_batch_request();
  const service::DispatchResult control = service::dispatch(req);

  // A journal can replay a checkpoint whose payload no longer decodes
  // (schema drift, partial corruption under a valid CRC). The dispatch
  // drops it and re-tests that unit rather than failing the job.
  std::map<std::size_t, std::string> resume;
  resume[0] = R"({"definitely":"not a checkpoint"})";
  resume[99] = R"({"canon":{},"data":{}})";  // out of range: ignored
  service::DispatchHooks hooks;
  hooks.resume = &resume;
  const service::DispatchResult resumed = service::dispatch(req, hooks);

  EXPECT_EQ(resumed.resumed_units, 0u);
  EXPECT_TRUE(resumed.outcome.pass == control.outcome.pass);
  EXPECT_EQ(strip_batch_timing(parse_json(resumed.report_json)).dump(),
            strip_batch_timing(parse_json(control.report_json)).dump());
}

TEST(Resume, DispatchCampaignResumeWithCollapse) {
  core::JobRequest req;
  req.kind = core::JobKind::kFaultCampaign;
  req.circuit = "op1_follower";
  req.collapse = true;
  req.threads = 1;

  std::map<std::size_t, std::string> checkpoints;
  std::size_t total_units = 0;
  service::DispatchHooks record;
  record.unit_complete = [&](std::size_t unit, std::size_t total,
                             const std::string& checkpoint_json) {
    checkpoints[unit] = checkpoint_json;
    total_units = total;
  };
  const service::DispatchResult control = service::dispatch(req, record);
  ASSERT_GT(checkpoints.size(), 2u);
  // Under collapse the work items are class representatives: fewer than
  // the full universe.
  ASSERT_EQ(checkpoints.size(), total_units);

  std::map<std::size_t, std::string> half(checkpoints.begin(),
                                          std::next(checkpoints.begin(), 2));
  service::DispatchHooks hooks;
  hooks.resume = &half;
  const service::DispatchResult resumed = service::dispatch(req, hooks);

  EXPECT_EQ(resumed.resumed_units, 2u);
  JsonValue control_report = parse_json(control.report_json);
  JsonValue resumed_report = parse_json(resumed.report_json);
  control_report.erase("wall_seconds");
  control_report.erase("cpu_seconds");
  resumed_report.erase("wall_seconds");
  resumed_report.erase("cpu_seconds");
  // Per-fault elapsed times differ between runs; the engine-level
  // canonical text (which excludes timing) must not.
  EXPECT_EQ(control.campaign->canonical_outcomes(),
            resumed.campaign->canonical_outcomes());
  EXPECT_EQ(resumed_report.find("detected_count")->as_u64(),
            control_report.find("detected_count")->as_u64());
  EXPECT_EQ(resumed_report.find("simulated_count")->as_u64(),
            control_report.find("simulated_count")->as_u64());
}

}  // namespace
