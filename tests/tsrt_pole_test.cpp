// Unit tests for the pole-extraction comparison path (approach 2 with
// real pole extraction on the OP1 cell).
#include <gtest/gtest.h>

#include <cmath>

#include "faults/universe.h"
#include "tsrt/pole_compare.h"

namespace msbist::tsrt {
namespace {

TEST(PoleCompare, GoldenOp1ModelIsSane) {
  const PoleSignature sig = extract_pole_signature(std::nullopt);
  EXPECT_GT(sig.dc_gain, 1e3);            // healthy open-loop gain
  ASSERT_GE(sig.poles.size(), 2u);
  for (const auto& p : sig.poles) EXPECT_LT(p.real(), 0.0);  // stable
  // Miller-compensated: dominant pole well separated.
  EXPECT_GT(std::abs(sig.poles[1].real()), 10.0 * std::abs(sig.poles[0].real()));
}

TEST(PoleCompare, GoldenSelfComparisonIsZero) {
  const PoleSignature sig = extract_pole_signature(std::nullopt);
  EXPECT_DOUBLE_EQ(pole_detection_percent(sig, sig), 0.0);
}

TEST(PoleCompare, ImpulseOfSingleRealPole) {
  PoleSignature sig;
  sig.poles = {{-100.0, 0.0}};
  sig.dc_gain = 2.0;
  // H(s) = 200/(s+100): h(t) = 200 e^{-100 t}.
  const auto h = impulse_from_signature(sig, 1e-3, 20);
  EXPECT_NEAR(h[0], 200.0, 1e-6);
  EXPECT_NEAR(h[10], 200.0 * std::exp(-1.0), 1e-4);
}

TEST(PoleCompare, EmptySignatureGivesZeros) {
  PoleSignature empty;
  const auto h = impulse_from_signature(empty, 1e-3, 4);
  for (double v : h) EXPECT_DOUBLE_EQ(v, 0.0);
  PoleSignature ref;
  ref.poles = {{-1.0, 0.0}};
  ref.dc_gain = 1.0;
  EXPECT_THROW(pole_detection_percent(empty, ref), std::invalid_argument);
}

TEST(PoleCompare, EveryOp1FaultShiftsTheModel) {
  // The paper's approach-2 claim on circuit 1's fault set: every faulty
  // circuit's extracted model differs observably from the fault-free one.
  const PoleSignature golden = extract_pole_signature(std::nullopt);
  for (const auto& f : faults::op1_fault_universe()) {
    const PoleSignature faulty = extract_pole_signature(f);
    EXPECT_GT(pole_detection_percent(golden, faulty), 30.0) << f.label;
  }
}

TEST(PoleCompare, OpenLoopFaultsKillTheGain) {
  // Open loop, a clamped internal node destroys the DC gain — the
  // complement of the closed-loop view where feedback masks it.
  const PoleSignature faulty =
      extract_pole_signature(faults::FaultSpec::stuck_at(7, false));
  const PoleSignature golden = extract_pole_signature(std::nullopt);
  EXPECT_LT(faulty.dc_gain, 0.01 * golden.dc_gain);
}

}  // namespace
}  // namespace msbist::tsrt
