// Unit tests for convolution and cross-correlation.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "dsp/convolution.h"
#include "dsp/correlation.h"
#include "dsp/vec.h"

namespace msbist::dsp {
namespace {

std::vector<double> random_vec(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<double> x(n);
  for (auto& v : x) v = d(rng);
  return x;
}

TEST(Convolution, KnownSmallCase) {
  // (1 + 2x)(3 + 4x) = 3 + 10x + 8x^2 as sequence convolution.
  const auto r = convolve_direct({1.0, 2.0}, {3.0, 4.0});
  ASSERT_EQ(r.size(), 3u);
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 10.0);
  EXPECT_DOUBLE_EQ(r[2], 8.0);
}

TEST(Convolution, IdentityKernel) {
  const std::vector<double> x{1.0, -2.0, 3.0};
  const auto r = convolve_direct(x, {1.0});
  EXPECT_EQ(r, x);
}

TEST(Convolution, EmptyOperands) {
  EXPECT_TRUE(convolve_direct({}, {1.0}).empty());
  EXPECT_TRUE(convolve_fft({1.0}, {}).empty());
}

TEST(Convolution, FftMatchesDirect) {
  const auto a = random_vec(130, 11);
  const auto b = random_vec(77, 22);
  const auto d = convolve_direct(a, b);
  const auto f = convolve_fft(a, b);
  ASSERT_EQ(d.size(), f.size());
  EXPECT_TRUE(approx_equal(d, f, 1e-9));
}

TEST(Convolution, Commutativity) {
  const auto a = random_vec(20, 3);
  const auto b = random_vec(31, 4);
  EXPECT_TRUE(approx_equal(convolve(a, b), convolve(b, a), 1e-10));
}

TEST(Convolution, DistributesOverAddition) {
  const auto a = random_vec(16, 5);
  const auto b = random_vec(16, 6);
  const auto k = random_vec(9, 7);
  const auto lhs = convolve(add(a, b), k);
  const auto rhs = add(convolve(a, k), convolve(b, k));
  EXPECT_TRUE(approx_equal(lhs, rhs, 1e-10));
}

TEST(Convolution, SameModePreservesLength) {
  const auto a = random_vec(50, 8);
  const auto k = random_vec(7, 9);
  EXPECT_EQ(convolve_same(a, k).size(), a.size());
}

TEST(Correlation, AutocorrelationPeaksAtZeroLag) {
  const auto x = random_vec(64, 10);
  const auto r = autocorrelate(x);
  // Zero lag sits at index x.size()-1.
  EXPECT_EQ(argmax_abs(r), x.size() - 1);
  EXPECT_NEAR(r[x.size() - 1], dot(x, x), 1e-9);
}

TEST(Correlation, NormalizedAutocorrelationPeakIsOne) {
  const auto x = random_vec(40, 12);
  const auto r = cross_correlate_normalized(x, x);
  EXPECT_NEAR(r[x.size() - 1], 1.0, 1e-12);
  for (double v : r) EXPECT_LE(std::abs(v), 1.0 + 1e-12);
}

TEST(Correlation, DetectsKnownShift) {
  // y is x delayed by 5 samples; the correlation peak must sit at lag 5.
  const auto x = random_vec(100, 13);
  std::vector<double> y(x.size() + 5, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) y[i + 5] = x[i];
  EXPECT_EQ(peak_lag(x, y), 5);
}

TEST(Correlation, NegativeShift) {
  const auto x = random_vec(80, 14);
  // y is x advanced: x delayed by -3 means y[i] = x[i+3].
  std::vector<double> y(x.begin() + 3, x.end());
  EXPECT_EQ(peak_lag(x, y), -3);
}

TEST(Correlation, CoefficientBounds) {
  const auto a = random_vec(64, 15);
  EXPECT_NEAR(correlation_coefficient(a, a), 1.0, 1e-12);
  EXPECT_NEAR(correlation_coefficient(a, scale(a, -2.0)), -1.0, 1e-12);
}

TEST(Correlation, ZeroVarianceYieldsZero) {
  const std::vector<double> flat(10, 3.0);
  const auto x = random_vec(10, 16);
  EXPECT_DOUBLE_EQ(correlation_coefficient(flat, x), 0.0);
}

TEST(Correlation, ScaleInvarianceOfCoefficient) {
  const auto a = random_vec(32, 17);
  const auto b = random_vec(32, 18);
  const double c1 = correlation_coefficient(a, b);
  const double c2 = correlation_coefficient(scale(a, 10.0), offset(b, 5.0));
  EXPECT_NEAR(c1, c2, 1e-12);
}

}  // namespace
}  // namespace msbist::dsp
