// Unit tests for dsp/vec.h — elementary vector arithmetic and statistics.
#include "dsp/vec.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace msbist::dsp {
namespace {

TEST(Vec, AddSubMul) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{4.0, 5.0, 6.0};
  EXPECT_EQ(add(a, b), (std::vector<double>{5.0, 7.0, 9.0}));
  EXPECT_EQ(sub(b, a), (std::vector<double>{3.0, 3.0, 3.0}));
  EXPECT_EQ(mul(a, b), (std::vector<double>{4.0, 10.0, 18.0}));
}

TEST(Vec, SizeMismatchThrows) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0};
  EXPECT_THROW(add(a, b), std::invalid_argument);
  EXPECT_THROW(sub(a, b), std::invalid_argument);
  EXPECT_THROW(mul(a, b), std::invalid_argument);
  EXPECT_THROW(dot(a, b), std::invalid_argument);
}

TEST(Vec, ScaleAndOffset) {
  const std::vector<double> a{1.0, -2.0};
  EXPECT_EQ(scale(a, 3.0), (std::vector<double>{3.0, -6.0}));
  EXPECT_EQ(offset(a, 1.0), (std::vector<double>{2.0, -1.0}));
}

TEST(Vec, DotAndNorm) {
  const std::vector<double> a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(norm(a), 5.0);
}

TEST(Vec, Statistics) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(sum(a), 10.0);
  EXPECT_DOUBLE_EQ(mean(a), 2.5);
  EXPECT_DOUBLE_EQ(variance(a), 1.25);
  EXPECT_NEAR(stddev(a), 1.118033988749895, 1e-12);
  EXPECT_NEAR(rms(a), 2.7386127875258306, 1e-12);
}

TEST(Vec, EmptyStatisticsThrow) {
  const std::vector<double> e;
  EXPECT_THROW(mean(e), std::invalid_argument);
  EXPECT_THROW(rms(e), std::invalid_argument);
  EXPECT_THROW(max(e), std::invalid_argument);
  EXPECT_THROW(min(e), std::invalid_argument);
  EXPECT_THROW(argmax(e), std::invalid_argument);
}

TEST(Vec, MinMaxArgmax) {
  const std::vector<double> a{1.0, -5.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(max(a), 3.0);
  EXPECT_DOUBLE_EQ(min(a), -5.0);
  EXPECT_DOUBLE_EQ(max_abs(a), 5.0);
  EXPECT_EQ(argmax(a), 2u);
  EXPECT_EQ(argmax_abs(a), 1u);
}

TEST(Vec, MaxAbsOfEmptyIsZero) { EXPECT_DOUBLE_EQ(max_abs({}), 0.0); }

TEST(Vec, Clamp) {
  const std::vector<double> a{-2.0, 0.5, 7.0};
  EXPECT_EQ(clamp(a, 0.0, 1.0), (std::vector<double>{0.0, 0.5, 1.0}));
}

TEST(Vec, Linspace) {
  const auto v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
}

TEST(Vec, LinspaceSinglePoint) {
  const auto v = linspace(3.0, 9.0, 1);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0], 3.0);
}

TEST(Vec, LinspaceZeroThrows) { EXPECT_THROW(linspace(0.0, 1.0, 0), std::invalid_argument); }

TEST(Vec, ApproxEqual) {
  EXPECT_TRUE(approx_equal({1.0, 2.0}, {1.0 + 1e-10, 2.0}, 1e-9));
  EXPECT_FALSE(approx_equal({1.0, 2.0}, {1.1, 2.0}, 1e-9));
  EXPECT_FALSE(approx_equal({1.0}, {1.0, 2.0}, 1e-9));
}

}  // namespace
}  // namespace msbist::dsp
