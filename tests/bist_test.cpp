// Unit tests for the on-chip BIST macros and controller.
#include <gtest/gtest.h>

#include <cmath>

#include "adc/dual_slope.h"
#include "bist/controller.h"
#include "bist/level_sensor.h"
#include "bist/overhead.h"
#include "bist/ramp_generator.h"
#include "bist/signature_compressor.h"
#include "bist/step_generator.h"

namespace msbist::bist {
namespace {

TEST(StepGen, PaperLevels) {
  const auto levels = paper_step_levels();
  ASSERT_EQ(levels.size(), 6u);
  EXPECT_DOUBLE_EQ(levels[0], 0.0);
  EXPECT_DOUBLE_EQ(levels[1], 0.59);
  EXPECT_DOUBLE_EQ(levels[5], 2.5);
}

TEST(StepGen, TypicalIsExact) {
  const StepGenerator gen = StepGenerator::typical();
  EXPECT_EQ(gen.tap_count(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(gen.level(i), paper_step_levels()[i]);
  }
}

TEST(StepGen, GainErrorScalesAllTaps) {
  analog::ProcessVariation pv = analog::ProcessVariation::nominal();
  const StepGenerator gen(paper_step_levels(), 0.02, pv);
  EXPECT_NEAR(gen.level(5), 2.5 * 1.02, 1e-12);
  EXPECT_NEAR(gen.level(1), 0.59 * 1.02, 1e-12);
}

TEST(StepGen, VariationStaysTight) {
  analog::ProcessVariation pv(3);
  const StepGenerator gen(paper_step_levels(), 0.0, pv);
  for (std::size_t i = 1; i < gen.tap_count(); ++i) {
    EXPECT_NEAR(gen.level(i), paper_step_levels()[i],
                paper_step_levels()[i] * 0.006 + 1e-12);
  }
}

TEST(StepGen, SequenceWaveformVisitsEveryTap) {
  const StepGenerator gen = StepGenerator::typical();
  const auto wave = gen.sequence_waveform(1e-3);
  for (std::size_t i = 0; i < gen.tap_count(); ++i) {
    const double t = (static_cast<double>(i) + 0.5) * 1e-3;
    EXPECT_NEAR(wave->value(t), gen.level(i), 1e-9) << "tap " << i;
  }
}

TEST(StepGen, InvalidArgsThrow) {
  analog::ProcessVariation pv = analog::ProcessVariation::nominal();
  EXPECT_THROW(StepGenerator({}, 0.0, pv), std::invalid_argument);
  EXPECT_THROW(StepGenerator::typical().level(6), std::out_of_range);
  EXPECT_THROW(StepGenerator::typical().sequence_waveform(0.0), std::invalid_argument);
}

TEST(RampGen, PaperTiming) {
  const RampGenerator ramp = RampGenerator::typical();
  EXPECT_DOUBLE_EQ(ramp.value(0.0), 0.0);
  EXPECT_NEAR(ramp.value(0.5), 1.25, 1e-9);
  EXPECT_NEAR(ramp.value(1.0), 2.5, 1e-9);
  EXPECT_NEAR(ramp.value(2.0), 2.5, 1e-9);  // clamped
}

TEST(RampGen, SixMeasurementsAt200ms) {
  const RampGenerator ramp = RampGenerator::typical();
  const auto times = ramp.measurement_times();
  ASSERT_EQ(times.size(), 6u);
  EXPECT_NEAR(times.front(), 0.2, 1e-12);
  EXPECT_NEAR(times.back(), 1.2, 1e-12);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_NEAR(times[i] - times[i - 1], 0.2, 1e-12);
  }
}

TEST(RampGen, GainErrorScalesSlope) {
  analog::ProcessVariation pv = analog::ProcessVariation::nominal();
  const RampGenerator ramp(2.5, 1.0, -0.04, pv);
  EXPECT_NEAR(ramp.value(1.0), 2.5 * 0.96, 1e-9);
}

TEST(LevelSensor, PaperThresholdCodes) {
  const DcLevelSensor sensor = DcLevelSensor::typical();
  EXPECT_EQ(sensor.classify(1.0), 0b00);
  EXPECT_EQ(sensor.classify(2.5), 0b01);
  EXPECT_EQ(sensor.classify(3.3), 0b01);  // the healthy integrator peak
  EXPECT_EQ(sensor.classify(4.0), 0b11);
}

TEST(LevelSensor, OrderedThresholdsRequired) {
  analog::ProcessVariation pv = analog::ProcessVariation::nominal();
  EXPECT_THROW(DcLevelSensor(3.6, 1.9, pv), std::invalid_argument);
}

TEST(Compressor, GoldenMatchesAllInTolerance) {
  const ToleranceCompressor comp({260, 201, 164, 119, 80, 10}, 4);
  EXPECT_EQ(comp.signature({260, 201, 164, 119, 80, 10}), comp.golden_signature());
  // Small deviations stay in tolerance.
  EXPECT_EQ(comp.signature({258, 203, 166, 117, 82, 12}), comp.golden_signature());
}

TEST(Compressor, OutOfToleranceBreaksSignature) {
  const ToleranceCompressor comp({260, 201, 164, 119, 80, 10}, 4);
  EXPECT_NE(comp.signature({260, 201, 164, 119, 80, 30}), comp.golden_signature());
  EXPECT_NE(comp.signature({0, 201, 164, 119, 80, 10}), comp.golden_signature());
}

TEST(Compressor, BucketBoundaries) {
  const ToleranceCompressor comp({100}, 5);
  EXPECT_EQ(comp.bucket(0, 94), 0u);
  EXPECT_EQ(comp.bucket(0, 95), 1u);
  EXPECT_EQ(comp.bucket(0, 105), 1u);
  EXPECT_EQ(comp.bucket(0, 106), 2u);
}

TEST(Compressor, Validation) {
  EXPECT_THROW(ToleranceCompressor({}, 4), std::invalid_argument);
  const ToleranceCompressor comp({1, 2}, 1);
  EXPECT_THROW(comp.signature({1}), std::invalid_argument);
  EXPECT_THROW(comp.bucket(2, 0), std::out_of_range);
}

TEST(Controller, HealthyDevicePassesAllTiers) {
  BistController ctrl = BistController::typical();
  adc::DualSlopeAdc adc(adc::DualSlopeAdcConfig::characterized());
  const BistReport rep = ctrl.run_all(adc);
  EXPECT_TRUE(rep.analog.pass);
  EXPECT_TRUE(rep.ramp.pass);
  EXPECT_TRUE(rep.digital.pass);
  EXPECT_TRUE(rep.compressed.pass);
  EXPECT_TRUE(rep.pass);
}

TEST(Controller, AnalogTestMatchesPaperFallTimes) {
  BistController ctrl = BistController::typical();
  adc::DualSlopeAdc adc(adc::DualSlopeAdcConfig::ideal());
  BistReport rep;
  ctrl.run_tier(Tier::kAnalog, adc, rep);
  const AnalogTestResult& res = rep.analog;
  ASSERT_EQ(res.fall_times_s.size(), 6u);
  // The paper's fall-time law: 2.6 ms down to 0.1 ms.
  EXPECT_NEAR(res.fall_times_s.front(), 2.6e-3, 30e-6);
  EXPECT_NEAR(res.fall_times_s.back(), 0.1e-3, 30e-6);
  EXPECT_TRUE(res.pass);
}

TEST(Controller, RampTestCodesDecrease) {
  BistController ctrl = BistController::typical();
  adc::DualSlopeAdc adc(adc::DualSlopeAdcConfig::ideal());
  BistReport rep;
  ctrl.run_tier(Tier::kRamp, adc, rep);
  const RampTestResult& res = rep.ramp;
  EXPECT_TRUE(res.codes_monotonic);
  EXPECT_TRUE(res.pass);
  EXPECT_GT(res.codes.front(), res.codes.back());
}

TEST(Controller, MatchedGainErrorsMask) {
  // The paper's caveat: an ADC gain error compensated by the same gain
  // error in the on-chip ramp is invisible to the ramp test.
  analog::ProcessVariation pv = analog::ProcessVariation::nominal();
  const double shared_gain_error = 0.03;
  adc::DualSlopeAdcConfig cfg = adc::DualSlopeAdcConfig::ideal();
  // An ADC whose reference runs 3 % high reads codes 3 % low...
  cfg.vref = 2.5 * (1.0 + shared_gain_error);
  adc::DualSlopeAdc skewed(cfg);
  // ...but the on-chip ramp from the same reference also runs 3 % high.
  BistController matched(StepGenerator(paper_step_levels(), shared_gain_error, pv),
                         RampGenerator(2.5, 1.0, shared_gain_error, pv),
                         DcLevelSensor::typical());
  BistReport masked_rep;
  matched.run_tier(Tier::kRamp, skewed, masked_rep);
  const RampTestResult& masked = masked_rep.ramp;
  EXPECT_TRUE(masked.pass);  // no indication of error at the output
  // An external (accurate) ramp would reveal it: codes shift visibly.
  BistController honest = BistController::typical();
  BistReport revealed_rep;
  honest.run_tier(Tier::kRamp, skewed, revealed_rep);
  const RampTestResult& revealed = revealed_rep.ramp;
  adc::DualSlopeAdc good(adc::DualSlopeAdcConfig::ideal());
  BistReport baseline_rep;
  honest.run_tier(Tier::kRamp, good, baseline_rep);
  const RampTestResult& baseline = baseline_rep.ramp;
  ASSERT_EQ(revealed.codes.size(), baseline.codes.size());
  int shifted = 0;
  for (std::size_t i = 0; i < revealed.codes.size(); ++i) {
    if (revealed.codes[i] != baseline.codes[i]) ++shifted;
  }
  EXPECT_GT(shifted, 3);
}

TEST(Controller, DigitalTestWithinSpec) {
  BistController ctrl = BistController::typical();
  adc::DualSlopeAdc adc(adc::DualSlopeAdcConfig::ideal());
  BistReport rep;
  ctrl.run_tier(Tier::kDigital, adc, rep);
  const DigitalTestResult& res = rep.digital;
  EXPECT_LE(res.max_conversion_time_s, 5.6e-3);
  EXPECT_NEAR(res.fall_time_per_code_s, 10e-6, 2e-6);
  EXPECT_NEAR(res.volts_per_code, 0.01, 1e-12);
  EXPECT_TRUE(res.pass);
}

TEST(Controller, StuckControlFailsBist) {
  BistController ctrl = BistController::typical();
  adc::DualSlopeAdcConfig cfg = adc::DualSlopeAdcConfig::characterized();
  cfg.control_faults.stuck_phase = digital::ConvPhase::kDeintegrate;
  adc::DualSlopeAdc adc(cfg);
  const BistReport rep = ctrl.run_all(adc);
  EXPECT_FALSE(rep.pass);
}

TEST(Controller, CounterFaultCaughtByCompressedTest) {
  BistController ctrl = BistController::typical();
  adc::DualSlopeAdcConfig cfg = adc::DualSlopeAdcConfig::characterized();
  cfg.counter_faults.stuck_bit = 5;
  adc::DualSlopeAdc adc(cfg);
  EXPECT_FALSE(ctrl.run_tier(Tier::kCompressed, adc).pass);
}

TEST(Controller, LargeComparatorOffsetCaught) {
  BistController ctrl = BistController::typical();
  adc::DualSlopeAdcConfig cfg = adc::DualSlopeAdcConfig::characterized();
  cfg.comparator.offset_v = 0.12;  // 12 LSB offset
  adc::DualSlopeAdc adc(cfg);
  const BistReport rep = ctrl.run_all(adc);
  EXPECT_FALSE(rep.pass);
}

TEST(Overhead, PaperTotals) {
  const OverheadModel m = OverheadModel::paper();
  EXPECT_EQ(m.analogue_total(), 152);
  EXPECT_EQ(m.digital_total(), 484);
  EXPECT_EQ(m.total(), 636);
  EXPECT_NEAR(m.overhead_ratio_vs_adc(), 0.636, 1e-9);
  EXPECT_NEAR(m.device_fraction(), 636.0 / 5000.0, 1e-9);
}

}  // namespace
}  // namespace msbist::bist
