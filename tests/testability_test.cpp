// Static testability engine: SCOAP-style scoring, fault-universe
// collapsing, and the campaign integration.
//
// The collapse tests run on purpose-built harness netlists rather than
// the paper circuits: a closed-loop op-amp has almost no exact structural
// redundancy (every node is distinct), so the harnesses plant the exact
// situations the rules target — a symmetric node pair, an unobservable
// island, faults folding onto each other — and the campaign tests then
// prove the collapsed run is bit-identical to the full one with a real
// DC-solving test function.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/runner.h"
#include "analysis/testability.h"
#include "analysis/topology.h"
#include "circuit/dc.h"
#include "circuit/elements.h"
#include "circuit/netlist.h"
#include "core/outcome.h"
#include "faults/campaign.h"
#include "faults/collapse.h"
#include "faults/universe.h"
#include "production/batch.h"

namespace {

using namespace msbist;
using circuit::kGround;

static_assert(core::Serializable<analysis::TestabilityReport>);
static_assert(core::Serializable<faults::CollapsedUniverse>);

/// Paper node number k -> harness node name "nk".
faults::NodeMap paper_map() {
  return [](int k) { return "n" + std::to_string(k); };
}

/// Harness for op1_fault_universe() (nodes 3,4,5,7,8 single, doubles at
/// 8-9, 5-8, 4-6), observed at n3:
///   * n7 and n8 are exactly symmetric (identical resistors to n5 and to
///     ground) -> SA faults at 7 and 8 fold.
///   * n6 and n9 form a resistive island tied only to ground -> clamps
///     there elide, so the doubles at 8-9 and 4-6 fold onto the single
///     faults at 8 and 4.
circuit::Netlist op1_harness() {
  circuit::Netlist n;
  const auto stim = n.node("stim");
  const auto n3 = n.node("n3");
  const auto n4 = n.node("n4");
  const auto n5 = n.node("n5");
  const auto n6 = n.node("n6");
  const auto n7 = n.node("n7");
  const auto n8 = n.node("n8");
  const auto n9 = n.node("n9");
  n.add<circuit::VoltageSource>(stim, kGround, 5.0);
  n.add<circuit::Resistor>(stim, n4, 1e3);
  n.add<circuit::Resistor>(n4, n5, 1e3);
  n.add<circuit::Resistor>(n5, n3, 2.2e3);
  n.add<circuit::Resistor>(n3, kGround, 10e3);
  // The symmetric pair: swapping n7 and n8 maps the netlist onto itself.
  n.add<circuit::Resistor>(n5, n7, 3.3e3);
  n.add<circuit::Resistor>(n5, n8, 3.3e3);
  n.add<circuit::Resistor>(n7, kGround, 4.7e3);
  n.add<circuit::Resistor>(n8, kGround, 4.7e3);
  // The unobservable island: n6-n9 reach only ground, and ground never
  // relays a signal.
  n.add<circuit::Resistor>(n6, n9, 1e3);
  n.add<circuit::Resistor>(n6, kGround, 1e3);
  n.add<circuit::Resistor>(n9, kGround, 1e3);
  return n;
}

/// Harness for sc_fault_universe() (nodes 4,5,7,8,9 single, bridges at
/// 6-7 and 5-8), observed at n7:
///   * n4 and n5 symmetric -> SA@4 / SA@5 fold.
///   * n9 is an island -> SA@9 (both polarities) statically undetectable.
///   * n6 is a local supply rail (clamps there would be absorbed; the
///     6-7 bridge still simulates because n7 is live).
circuit::Netlist sc_harness() {
  circuit::Netlist n;
  const auto stim = n.node("stim");
  const auto n4 = n.node("n4");
  const auto n5 = n.node("n5");
  const auto n6 = n.node("n6");
  const auto n7 = n.node("n7");
  const auto n8 = n.node("n8");
  const auto n9 = n.node("n9");
  n.add<circuit::VoltageSource>(stim, kGround, 2.5);
  n.add<circuit::Resistor>(stim, n7, 1e3);
  n.add<circuit::Resistor>(n7, n4, 1e3);
  n.add<circuit::Resistor>(n7, n5, 1e3);
  n.add<circuit::Resistor>(n4, kGround, 2e3);
  n.add<circuit::Resistor>(n5, kGround, 2e3);
  n.add<circuit::Resistor>(n7, n8, 1.5e3);
  n.add<circuit::Resistor>(n8, kGround, 3.3e3);
  n.add<circuit::VoltageSource>(n6, kGround, 5.0);
  n.add<circuit::Resistor>(n6, n8, 2.7e3);
  n.add<circuit::Resistor>(n9, kGround, 1e3);
  n.add<circuit::Resistor>(n9, kGround, 1e3);
  return n;
}

/// A real, deterministic, class-consistent test function: inject the
/// fault into a fresh harness, DC-solve, flag any tap deviation from the
/// golden voltage. Binary score/empty detail keep members of an
/// equivalence class bit-identical (same-class netlists are related by an
/// automorphism or an island mutation, so the *detection verdict* is
/// equal even where last-ulp voltages are not).
faults::FaultTestFn tap_probe(circuit::Netlist (*build)(),
                              const std::string& tap,
                              std::vector<std::string>* log = nullptr,
                              std::mutex* log_mu = nullptr) {
  const double golden = circuit::dc_operating_point(build()).voltage(tap);
  return [=](const faults::FaultSpec& f) {
    if (log != nullptr) {
      std::lock_guard<std::mutex> lock(*log_mu);
      log->push_back(f.label);
    }
    circuit::Netlist n = build();
    faults::inject(n, f, paper_map());
    const circuit::DcResult dc = circuit::dc_operating_point(n);
    faults::FaultResult r;
    r.fault = f;
    r.detected = std::abs(dc.voltage(tap) - golden) > 1e-6;
    r.score = r.detected ? 1.0 : 0.0;
    return r;
  };
}

TEST(Testability, ScoresTheHarness) {
  analysis::TestabilityOptions opts;
  opts.taps = {"n3"};
  const analysis::TestabilityReport rep =
      analysis::analyze_testability(op1_harness(), opts);

  const analysis::NodeTestability* tap = rep.find("n3");
  ASSERT_NE(tap, nullptr);
  EXPECT_TRUE(tap->tap);
  EXPECT_DOUBLE_EQ(tap->observability, 1.0);

  // stim is supply-pinned: scored 1 by convention, excluded from stats.
  const analysis::NodeTestability* stim = rep.find("stim");
  ASSERT_NE(stim, nullptr);
  EXPECT_TRUE(stim->rail);

  // The island cannot reach the tap or the stimulus.
  for (const char* node : {"n6", "n9"}) {
    const analysis::NodeTestability* t = rep.find(node);
    ASSERT_NE(t, nullptr) << node;
    EXPECT_EQ(t->observability, 0.0) << node;
    EXPECT_EQ(t->controllability, 0.0) << node;
  }
  EXPECT_EQ(rep.unobservable, 2u);
  EXPECT_EQ(rep.uncontrollable, 2u);
  EXPECT_GT(rep.mean_observability, 0.0);
  EXPECT_LT(rep.mean_observability, 1.0);
  EXPECT_FALSE(rep.outcome().pass);  // unobservable nodes are a finding

  // Symmetric nodes score identically.
  EXPECT_DOUBLE_EQ(rep.find("n7")->observability,
                   rep.find("n8")->observability);
  EXPECT_DOUBLE_EQ(rep.find("n7")->controllability,
                   rep.find("n8")->controllability);
}

TEST(Testability, AddingATapNeverLowersObservability) {
  const circuit::Netlist n = op1_harness();
  analysis::TestabilityOptions base_opts;
  base_opts.taps = {"n3"};
  const analysis::TestabilityReport base =
      analysis::analyze_testability(n, base_opts);
  for (const char* extra : {"n4", "n5", "n6", "n7", "n8", "n9", "stim"}) {
    analysis::TestabilityOptions more = base_opts;
    more.taps.push_back(extra);
    const analysis::TestabilityReport rep = analysis::analyze_testability(n, more);
    ASSERT_EQ(rep.nodes.size(), base.nodes.size());
    for (std::size_t i = 0; i < rep.nodes.size(); ++i) {
      EXPECT_GE(rep.nodes[i].observability, base.nodes[i].observability)
          << rep.nodes[i].node << " with extra tap " << extra;
    }
  }
}

TEST(Testability, RecommendsTheIslandTestPoint) {
  const circuit::Netlist n = sc_harness();
  const analysis::Topology topo(n);
  analysis::TestabilityOptions opts;
  opts.taps = {"n7"};
  const std::vector<analysis::TestPointSuggestion> sugg =
      analysis::recommend_test_points(topo, opts, 10);
  ASSERT_FALSE(sugg.empty());
  bool found_island = false;
  for (const analysis::TestPointSuggestion& s : sugg) {
    if (s.node == "n9") {
      found_island = true;
      // Tapping the island observes exactly the island, at cost zero.
      EXPECT_EQ(s.newly_observable, 1u);
      EXPECT_NEAR(s.gain, 1.0, 1e-12);
    }
  }
  EXPECT_TRUE(found_island);
}

TEST(Testability, PassesWarnAndSuggest) {
  const circuit::Netlist n = sc_harness();
  const analysis::Report r = analysis::Runner::with_testability({"n7"}).run(n);
  // n9 earns a Warning (unobservable) and an Info (uncontrollable).
  const auto blind = r.for_rule("testability");
  ASSERT_EQ(blind.size(), 2u) << r.format();
  std::size_t warnings = 0;
  for (const auto& d : blind) {
    EXPECT_EQ(d.node, "n9");
    if (d.severity == analysis::Severity::kWarning) ++warnings;
  }
  EXPECT_EQ(warnings, 1u);
  EXPECT_FALSE(r.for_rule("test-point").empty()) << r.format();
}

TEST(Collapse, FoldsTheOp1Universe) {
  const std::vector<faults::FaultSpec> universe = faults::op1_fault_universe();
  faults::CollapseOptions opts;
  opts.taps = {"n3"};
  const faults::CollapsedUniverse cu =
      faults::collapse(universe, op1_harness(), paper_map(), opts);

  // 16 faults -> 10 classes: SA@8 folds onto SA@7 (symmetry), the 8-9
  // doubles fold likewise after the island clamp elides, and the 4-6
  // doubles fold onto SA@4 (dedup after elision).
  EXPECT_EQ(cu.map.size(), 16u);
  EXPECT_EQ(cu.map.simulated_count(), 10u);
  EXPECT_EQ(cu.map.solves_saved(), 6u);
  EXPECT_EQ(cu.map.undetectable_count(), 0u);
  EXPECT_GE(cu.collapse_ratio(), 0.25);
  EXPECT_FALSE(cu.approximate);
  EXPECT_TRUE(cu.outcome().pass);

  // SA0@7 (index 4) represents SA0@8 (index 6) and double-SA0@8-9 (10).
  EXPECT_TRUE(cu.map.is_representative(4));
  EXPECT_EQ(cu.map.representative_of(6), 4u);
  EXPECT_EQ(cu.map.rule(6), faults::CollapseRule::kSymmetry);
  EXPECT_EQ(cu.map.representative_of(10), 4u);
  const std::vector<std::size_t> cls = cu.map.members_of(4);
  EXPECT_EQ(cls.size(), 3u);

  // Doubles at 4-6 (indices 14, 15) fold onto SA@4 (indices 0, 1).
  EXPECT_EQ(cu.map.representative_of(14), 0u);
  EXPECT_EQ(cu.map.representative_of(15), 1u);
  EXPECT_FALSE(cu.reasons[14].empty());

  // representative_specs preserves universe order and size.
  const std::vector<faults::FaultSpec> reps = cu.representative_specs();
  ASSERT_EQ(reps.size(), 10u);
  EXPECT_EQ(reps.front().label, universe.front().label);
}

TEST(Collapse, MarksTheScIslandUndetectable) {
  const std::vector<faults::FaultSpec> universe = faults::sc_fault_universe();
  faults::CollapseOptions opts;
  opts.taps = {"n7"};
  const faults::CollapsedUniverse cu =
      faults::collapse(universe, sc_harness(), paper_map(), opts);

  EXPECT_EQ(cu.map.simulated_count(), 8u);
  EXPECT_EQ(cu.map.solves_saved(), 4u);
  EXPECT_EQ(cu.map.undetectable_count(), 2u);
  EXPECT_GE(cu.collapse_ratio(), 0.25);
  EXPECT_FALSE(cu.outcome().pass);  // undetectable faults are a finding

  // SA@9 in both polarities cannot reach the tap (indices 8 and 9).
  EXPECT_TRUE(cu.map.is_undetectable(8));
  EXPECT_TRUE(cu.map.is_undetectable(9));
  EXPECT_EQ(cu.map.rule(8), faults::CollapseRule::kUndetectable);
  EXPECT_EQ(cu.signatures[8], "none");
  EXPECT_NE(cu.reasons[8].find("statically undetectable"), std::string::npos);

  // SA@5 folds onto SA@4 by the n4/n5 symmetry (indices 2,3 -> 0,1).
  EXPECT_EQ(cu.map.representative_of(2), 0u);
  EXPECT_EQ(cu.map.representative_of(3), 1u);
  EXPECT_EQ(cu.map.rule(2), faults::CollapseRule::kSymmetry);
}

TEST(Collapse, RejectsUnknownNodes) {
  const std::vector<faults::FaultSpec> universe = faults::op1_fault_universe();
  faults::CollapseOptions bad_tap;
  bad_tap.taps = {"nope"};
  EXPECT_THROW(
      faults::collapse(universe, op1_harness(), paper_map(), bad_tap),
      std::invalid_argument);
  faults::CollapseOptions opts;
  opts.taps = {"n7"};
  // sc_harness has no n3; the OP1 universe clamps it.
  EXPECT_THROW(faults::collapse(universe, sc_harness(), paper_map(), opts),
               std::invalid_argument);
}

TEST(CollapseMap, SignatureAlgebra) {
  const faults::CollapseMap m = faults::CollapseMap::from_signatures(
      {"a", "b", "a", "", "b"}, {false, false, false, true, false});
  EXPECT_EQ(m.size(), 5u);
  ASSERT_EQ(m.representatives().size(), 2u);
  EXPECT_EQ(m.representatives()[0], 0u);
  EXPECT_EQ(m.representatives()[1], 1u);
  EXPECT_EQ(m.representative_of(2), 0u);
  EXPECT_EQ(m.representative_of(4), 1u);
  EXPECT_TRUE(m.is_undetectable(3));
  EXPECT_FALSE(m.is_representative(3));
  EXPECT_EQ(m.rule(3), faults::CollapseRule::kUndetectable);
  EXPECT_EQ(m.simulated_count(), 2u);
  EXPECT_EQ(m.solves_saved(), 3u);
  EXPECT_EQ(m.undetectable_count(), 1u);
  const std::vector<std::size_t> cls = m.members_of(0);
  ASSERT_EQ(cls.size(), 2u);
  EXPECT_EQ(cls[1], 2u);

  const faults::CollapseMap id = faults::CollapseMap::identity(3);
  EXPECT_EQ(id.simulated_count(), 3u);
  EXPECT_EQ(id.solves_saved(), 0u);

  EXPECT_THROW(faults::CollapseMap::from_signatures({"a"}, {true, false}),
               std::invalid_argument);
}

TEST(CollapsedCampaign, Op1HarnessBitIdentical) {
  const std::vector<faults::FaultSpec> universe = faults::op1_fault_universe();
  faults::CollapseOptions copts;
  copts.taps = {"n3"};
  const faults::CollapsedUniverse cu =
      faults::collapse(universe, op1_harness(), paper_map(), copts);

  const faults::FaultTestFn probe = tap_probe(&op1_harness, "n3");
  const faults::CampaignReport full = faults::run_campaign(universe, probe);
  EXPECT_GT(full.detected_count, 0u);
  EXPECT_EQ(full.simulated_count, universe.size());
  EXPECT_EQ(full.solves_saved, 0u);

  faults::CampaignOptions opts;
  opts.collapse = &cu;
  const faults::CampaignReport collapsed =
      faults::run_campaign(universe, probe, opts);
  EXPECT_EQ(collapsed.results.size(), universe.size());
  EXPECT_EQ(collapsed.simulated_count, 10u);
  EXPECT_EQ(collapsed.solves_saved, 6u);
  EXPECT_EQ(collapsed.statically_undetectable_count, 0u);
  EXPECT_EQ(full.canonical_outcomes(), collapsed.canonical_outcomes());

  for (std::size_t threads : {2u, 8u}) {
    faults::CampaignOptions p = opts;
    p.threads = threads;
    const faults::CampaignReport par =
        faults::run_campaign_parallel(universe, probe, p);
    EXPECT_EQ(full.canonical_outcomes(), par.canonical_outcomes())
        << "threads=" << threads;
    EXPECT_EQ(par.solves_saved, 6u);
  }
}

TEST(CollapsedCampaign, ScHarnessBitIdentical) {
  const std::vector<faults::FaultSpec> universe = faults::sc_fault_universe();
  faults::CollapseOptions copts;
  copts.taps = {"n7"};
  const faults::CollapsedUniverse cu =
      faults::collapse(universe, sc_harness(), paper_map(), copts);

  const faults::FaultTestFn probe = tap_probe(&sc_harness, "n7");
  const faults::CampaignReport full = faults::run_campaign(universe, probe);
  // The island faults really do escape: static analysis and simulation
  // agree that SA@9 never reaches the tap.
  EXPECT_FALSE(full.results[8].detected);
  EXPECT_FALSE(full.results[9].detected);
  EXPECT_GT(full.detected_count, 0u);

  faults::CampaignOptions opts;
  opts.collapse = &cu;
  const faults::CampaignReport collapsed =
      faults::run_campaign(universe, probe, opts);
  EXPECT_EQ(collapsed.simulated_count, 8u);
  EXPECT_EQ(collapsed.solves_saved, 4u);
  EXPECT_EQ(collapsed.statically_undetectable_count, 2u);
  EXPECT_EQ(full.canonical_outcomes(), collapsed.canonical_outcomes());
  EXPECT_NE(collapsed.throughput_summary().find("collapse:"),
            std::string::npos);

  for (std::size_t threads : {2u, 8u}) {
    faults::CampaignOptions p = opts;
    p.threads = threads;
    const faults::CampaignReport par =
        faults::run_campaign_parallel(universe, probe, p);
    EXPECT_EQ(full.canonical_outcomes(), par.canonical_outcomes())
        << "threads=" << threads;
  }
}

TEST(CollapsedCampaign, UndetectableFaultsNeverReachTheSolver) {
  const std::vector<faults::FaultSpec> universe = faults::sc_fault_universe();
  faults::CollapseOptions copts;
  copts.taps = {"n7"};
  const faults::CollapsedUniverse cu =
      faults::collapse(universe, sc_harness(), paper_map(), copts);

  std::vector<std::string> log;
  std::mutex log_mu;
  const faults::FaultTestFn probe = tap_probe(&sc_harness, "n7", &log, &log_mu);
  faults::CampaignOptions opts;
  opts.collapse = &cu;
  std::size_t progress_total = 0;
  opts.progress = [&](std::size_t, std::size_t total,
                      const faults::FaultResult&) { progress_total = total; };
  const faults::CampaignReport rep =
      faults::run_campaign(universe, probe, opts);

  EXPECT_EQ(log.size(), 8u);  // one invocation per representative
  EXPECT_EQ(progress_total, 8u);
  for (const std::string& label : log) {
    EXPECT_NE(label, universe[8].label);
    EXPECT_NE(label, universe[9].label);
  }
  // The skipped faults still appear in the report, as clean escapes.
  EXPECT_EQ(rep.results.size(), universe.size());
  EXPECT_FALSE(rep.results[8].detected);
  EXPECT_EQ(rep.results[8].score, 0.0);
}

TEST(CollapsedCampaign, RejectsBadConfigurations) {
  const std::vector<faults::FaultSpec> universe = faults::sc_fault_universe();
  faults::CollapseOptions copts;
  copts.taps = {"n7"};
  const faults::CollapsedUniverse cu =
      faults::collapse(universe, sc_harness(), paper_map(), copts);
  const faults::FaultTestFn probe = tap_probe(&sc_harness, "n7");

  faults::CampaignOptions opts;
  opts.collapse = &cu;
  const std::vector<faults::FaultSpec> other = faults::op1_fault_universe();
  EXPECT_THROW(faults::run_campaign(other, probe, opts), std::invalid_argument);
  EXPECT_THROW(faults::run_campaign_parallel(other, probe, opts),
               std::invalid_argument);

  faults::CampaignOptions stop = opts;
  stop.stop_on_first_undetected = true;
  EXPECT_THROW(faults::run_campaign(universe, probe, stop),
               std::invalid_argument);
}

TEST(SiteUniverse, EnumeratesFaultSitesFromTopology) {
  const faults::FaultSiteUniverse u = faults::all_single_stuck(op1_harness());
  // stim is supply-pinned; ground is excluded; n3..n9 all have degree >= 2.
  ASSERT_EQ(u.sites.size(), 7u);
  EXPECT_EQ(u.sites.front(), "n3");
  EXPECT_EQ(u.faults.size(), 14u);
  EXPECT_EQ(u.faults[0].label, "SA0@n3");
  EXPECT_EQ(u.faults[1].label, "SA1@n3");

  // The bundled NodeMap resolves the 1-based site numbers.
  const faults::NodeMap map = u.node_map();
  EXPECT_EQ(map(u.faults[0].node_a), "n3");
  EXPECT_EQ(map(static_cast<int>(u.sites.size())), "n9");
  EXPECT_THROW(map(0), std::out_of_range);
  EXPECT_THROW(map(static_cast<int>(u.sites.size()) + 1), std::out_of_range);

  // The site universe collapses on its own netlist: the n7/n8 symmetry
  // folds two faults and the n6/n9 island is statically undetectable.
  faults::CollapseOptions copts;
  copts.taps = {"n3"};
  const faults::CollapsedUniverse cu =
      faults::collapse(u.faults, op1_harness(), map, copts);
  EXPECT_EQ(cu.map.simulated_count(), 8u);
  EXPECT_EQ(cu.map.undetectable_count(), 4u);
  EXPECT_EQ(cu.map.solves_saved(), 6u);

  // The range overload is unchanged.
  const std::vector<faults::FaultSpec> range = faults::all_single_stuck(4, 6);
  EXPECT_EQ(range.size(), 6u);
  EXPECT_THROW(faults::all_single_stuck(3, 2), std::invalid_argument);
}

TEST(TestabilityJson, RoundTripsThroughPython) {
  if (std::system("python3 -c 'pass' > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "python3 not available";
  }
  analysis::TestabilityOptions topts;
  topts.taps = {"n3"};
  const analysis::TestabilityReport rep =
      analysis::analyze_testability(op1_harness(), topts);

  const std::vector<faults::FaultSpec> universe = faults::op1_fault_universe();
  faults::CollapseOptions copts;
  copts.taps = {"n3"};
  const faults::CollapsedUniverse cu =
      faults::collapse(universe, op1_harness(), paper_map(), copts);

  faults::CampaignOptions opts;
  opts.collapse = &cu;
  const faults::CampaignReport camp =
      faults::run_campaign(universe, tap_probe(&op1_harness, "n3"), opts);

  production::SpotCheckResult spot;
  spot.injected = 6;
  spot.detected = 4;
  spot.simulated = 3;
  spot.undetectable = 2;
  spot.undetectable_labels = {"counter-stuck-bit12", "latch-stuck-low-0xC00"};

  core::JsonWriter w;
  w.begin_object();
  w.key("testability");
  rep.to_json(w);
  w.key("collapse");
  cu.to_json(w);
  w.key("campaign");
  camp.to_json(w);
  w.key("spot_check");
  spot.to_json(w);
  w.end_object();

  const std::string path = testing::TempDir() + "/msbist_testability.json";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    out << w.str();
  }
  const std::string cmd =
      "python3 -m json.tool < '" + path + "' > /dev/null 2>&1";
  EXPECT_EQ(std::system(cmd.c_str()), 0)
      << "python3 -m json.tool rejected the document";
  std::remove(path.c_str());
}

}  // namespace
