// Unit tests for AC analysis and pole extraction.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>

#include "analog/opamp.h"
#include "circuit/ac.h"
#include "circuit/elements.h"
#include "circuit/mos.h"

namespace msbist::circuit {
namespace {

// RC low-pass: R = 1k, C = 1uF -> pole at -1/(RC) = -1000 rad/s,
// |H| = 1/sqrt(1 + (wRC)^2).
struct RcFixture {
  Netlist n;
  NodeId in, out;
  RcFixture() {
    in = n.node("in");
    out = n.node("out");
    n.add<VoltageSource>(in, kGround, 1.0);
    n.name_last("VIN");
    n.add<Resistor>(in, out, 1e3);
    n.add<Capacitor>(out, kGround, 1e-6);
  }
};

TEST(Ac, RcLowpassMagnitudeAndPhase) {
  RcFixture f;
  const double fc = 1.0 / (2.0 * std::numbers::pi * 1e-3);  // ~159 Hz
  const auto h = ac_transfer(f.n, "VIN", "out", {fc / 100.0, fc, fc * 100.0});
  EXPECT_NEAR(std::abs(h[0]), 1.0, 1e-3);
  EXPECT_NEAR(std::abs(h[1]), 1.0 / std::sqrt(2.0), 1e-3);
  EXPECT_NEAR(std::abs(h[2]), 0.01, 1e-3);
  // Phase: ~0 at low frequency, -45 deg at the corner.
  EXPECT_NEAR(std::arg(h[1]), -std::numbers::pi / 4.0, 1e-3);
}

TEST(Ac, RcPoleExtraction) {
  RcFixture f;
  const auto poles = circuit_poles(f.n);
  ASSERT_EQ(poles.size(), 1u);
  EXPECT_NEAR(poles[0].real(), -1000.0, 1.0);
  EXPECT_NEAR(poles[0].imag(), 0.0, 1e-6);
}

TEST(Ac, TwoPoleLadder) {
  // Two cascaded RC sections (loaded): poles are real and distinct,
  // eigen-solved from the exact 2x2 system.
  Netlist n;
  const NodeId in = n.node("in");
  const NodeId mid = n.node("mid");
  const NodeId out = n.node("out");
  n.add<VoltageSource>(in, kGround, 0.0);
  n.name_last("VIN");
  const double r1 = 1e3, c1 = 1e-6, r2 = 10e3, c2 = 1e-7;
  n.add<Resistor>(in, mid, r1);
  n.add<Capacitor>(mid, kGround, c1);
  n.add<Resistor>(mid, out, r2);
  n.add<Capacitor>(out, kGround, c2);
  auto poles = circuit_poles(n);
  ASSERT_EQ(poles.size(), 2u);
  // Characteristic polynomial of the ladder:
  //   s^2 r1 c1 r2 c2 + s (r1 c1 + r2 c2 + r1 c2) + 1 = 0.
  const double a = r1 * c1 * r2 * c2;
  const double b = r1 * c1 + r2 * c2 + r1 * c2;
  const double disc = std::sqrt(b * b - 4.0 * a);
  const double p_slow = (-b + disc) / (2.0 * a);
  const double p_fast = (-b - disc) / (2.0 * a);
  std::sort(poles.begin(), poles.end(),
            [](const auto& x, const auto& y) { return x.real() > y.real(); });
  EXPECT_NEAR(poles[0].real(), p_slow, std::abs(p_slow) * 1e-3);
  EXPECT_NEAR(poles[1].real(), p_fast, std::abs(p_fast) * 1e-3);
}

TEST(Ac, RlcComplexPolePair) {
  // RC + gyrator-free substitute: series R with parallel C and a VCCS
  // feedback loop creating a complex pair is overkill; instead verify a
  // complex pair via two integrators in a loop (VCCS ring).
  Netlist n;
  const NodeId a = n.node("a");
  const NodeId b = n.node("b");
  n.add<Capacitor>(a, kGround, 1e-6);
  n.add<Capacitor>(b, kGround, 1e-6);
  // i_a = -gm v_b, i_b = +gm v_a: oscillator at w = gm/C.
  n.add<Vccs>(a, kGround, b, kGround, 1e-3);
  n.add<Vccs>(kGround, b, a, kGround, 1e-3);
  // Small damping so the DC point is well-defined.
  n.add<Resistor>(a, kGround, 1e6);
  n.add<Resistor>(b, kGround, 1e6);
  const auto poles = circuit_poles(n);
  ASSERT_EQ(poles.size(), 2u);
  const double w0 = 1e-3 / 1e-6;  // 1000 rad/s
  EXPECT_NEAR(std::abs(poles[0].imag()), w0, w0 * 0.01);
  EXPECT_NEAR(poles[0].real(), -1.0, 0.1);  // 1/(R C) = 1 rad/s damping
}

TEST(Ac, Op1DominantPoleAndGain) {
  // Linearize the full transistor-level OP1 around mid-rail: the
  // low-frequency gain must be large and the dominant pole well below the
  // non-dominant ones (Miller compensation at work).
  Netlist n;
  const analog::Op1Nodes nodes = analog::build_op1(n);
  n.add<VoltageSource>(n.find_node(nodes.in_plus), kGround, 2.5);
  n.name_last("VINP");
  n.add<VoltageSource>(n.find_node(nodes.in_minus), kGround, 2.5);

  const auto h = ac_transfer(n, "VINP", nodes.out, {1.0, 10.0, 100.0});
  const double dc_gain = std::abs(h[0]);
  EXPECT_GT(dc_gain, 100.0);  // healthy open-loop gain

  auto poles = circuit_poles(n);
  ASSERT_GE(poles.size(), 2u);
  for (const auto& p : poles) EXPECT_LT(p.real(), 0.0);  // stable
  std::sort(poles.begin(), poles.end(), [](const auto& x, const auto& y) {
    return std::abs(x.real()) < std::abs(y.real());
  });
  // Dominant pole at least a decade below the next one.
  EXPECT_GT(std::abs(poles[1].real()), 8.0 * std::abs(poles[0].real()));
}

TEST(Ac, FaultShiftsOp1Poles) {
  // The paper's approach-2 premise: a faulty circuit has different
  // poles/zeros. Clamp node 7 (first-stage output) and compare the
  // dominant pole against the healthy cell.
  auto dominant_pole = [](bool faulty) {
    Netlist n;
    const analog::Op1Nodes nodes = analog::build_op1(n);
    n.add<VoltageSource>(n.find_node(nodes.in_plus), kGround, 2.5);
    n.name_last("VINP");
    n.add<VoltageSource>(n.find_node(nodes.in_minus), kGround, 2.5);
    if (faulty) {
      const NodeId drv = n.node("clamp");
      n.add<VoltageSource>(drv, kGround, 0.0);
      n.add<Resistor>(drv, n.find_node(nodes.diff_out), 10.0);
    }
    auto poles = circuit_poles(n);
    std::sort(poles.begin(), poles.end(), [](const auto& x, const auto& y) {
      return std::abs(x.real()) < std::abs(y.real());
    });
    return poles.front();
  };
  const auto healthy = dominant_pole(false);
  const auto faulty = dominant_pole(true);
  EXPECT_GT(std::abs(faulty - healthy), 0.5 * std::abs(healthy));
}

TEST(Ac, Validation) {
  RcFixture f;
  EXPECT_THROW(ac_transfer(f.n, "NOPE", "out", {1.0}), std::invalid_argument);
  EXPECT_THROW(ac_transfer(f.n, "VIN", "gnd", {1.0}), std::invalid_argument);
  EXPECT_THROW(log_frequencies(0.0, 10.0, 5), std::invalid_argument);
  EXPECT_THROW(log_frequencies(1.0, 10.0, 1), std::invalid_argument);
}

TEST(Ac, LogFrequencies) {
  const auto f = log_frequencies(1.0, 1000.0, 4);
  ASSERT_EQ(f.size(), 4u);
  EXPECT_NEAR(f[0], 1.0, 1e-12);
  EXPECT_NEAR(f[1], 10.0, 1e-9);
  EXPECT_NEAR(f[2], 100.0, 1e-7);
  EXPECT_NEAR(f[3], 1000.0, 1e-6);
}

}  // namespace
}  // namespace msbist::circuit
